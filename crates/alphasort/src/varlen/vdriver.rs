//! One-pass and two-pass drivers for variable-length records.
//!
//! The same shapes as [`crate::driver`]'s fixed-layout drivers — overlapped
//! run formation, serial or splitter-partitioned final merges, resumable
//! pass 1 — with record boundaries coming from the length-prefixed framing
//! ([`VarFramer`]) instead of a fixed stride, and the merge running
//! LCP/OVC-aware ([`crate::varlen::vmerge`]).
//!
//! Differences from the fixed path, by design:
//!
//! * Runs are cut by *record count* (`cfg.run_records`), not bytes: a run's
//!   byte size varies with its records, exactly like real sort runs over
//!   text keys.
//! * Two-pass scratch is the in-memory [`MemVarScratch`] (striped var-len
//!   scratch with manifests is a roadmap item); the resume contract —
//!   recovered spans are skipped during pass 1 and gap runs pack around
//!   them in input order — matches [`crate::driver::MemScratch`] exactly,
//!   and there is no cascade level (in-memory merges take any fan-in).

use std::collections::VecDeque;
use std::io;
use std::sync::Mutex;
use std::time::Instant;

use alphasort_obs as obs;

use crate::driver::{RecoveredRun, SortConfig, SortOutcome};
use crate::gather::gather_var_into;
use crate::io::{RecordSink, RecordSource};
use crate::planner::PassPlan;
use crate::pmerge::{plan_var_partitions_with, VarMergePartition, SAMPLES_PER_RANGE};
use crate::splitter::{byte_splitters_from_keys, route_bytes};
use crate::stats::{timed_phase, SortStats};
use crate::varlen::vmerge::{MergeMode, VarRunCursor, VarRunMerger, VarStreamMerger};
use crate::varlen::vrun::{VarFramer, VarRun};

/// Form `bufs` into sorted runs, in order, on up to `workers` threads
/// (serial when 0/1). Formation is the QuickSort + LCP-table step; each
/// buffer is independent, so a shared work queue keeps every thread busy
/// regardless of run-size skew.
fn form_runs(bufs: Vec<Vec<u8>>, workers: usize) -> io::Result<Vec<VarRun>> {
    let n = bufs.len();
    if workers <= 1 || n <= 1 {
        return bufs.into_iter().map(VarRun::from_frames).collect();
    }
    let queue: Mutex<Vec<(usize, Vec<u8>)>> =
        Mutex::new(bufs.into_iter().enumerate().rev().collect());
    let slots: Mutex<Vec<Option<io::Result<VarRun>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((i, buf)) = job else { break };
                let run = VarRun::from_frames(buf);
                slots.lock().expect("slots lock")[i] = Some(run);
            });
        }
    });
    slots
        .into_inner()
        .expect("slots lock")
        .into_iter()
        .map(|s| s.expect("every submitted run is formed"))
        .collect()
}

/// Partitioned merge + gather of `runs` under `plan`, one range per scoped
/// thread, buffers returned in range order. Range routing is a pure
/// function of the key and each range keeps the run-index tie-break, so
/// the concatenation is byte-identical to the serial merge.
fn partitioned_merge(
    runs: &[VarRun],
    plan: &VarMergePartition,
    cfg: &SortConfig,
    stats: &mut SortStats,
    sink: &mut impl RecordSink,
) -> io::Result<()> {
    let tree_kernel = cfg.kernel.tree();
    let track = obs::current_track();
    let outputs = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(plan.ranges());
        for (range, row) in plan.bounds.iter().enumerate() {
            let refs: Vec<&VarRun> = runs.iter().collect();
            let records = plan.range_records[range];
            let track = track.clone();
            handles.push(scope.spawn(move || {
                obs::adopt_track(track);
                let mut g = obs::span(obs::phase::MERGE);
                g.attr("range", range as u64);
                g.attr("records", records);
                let t0 = Instant::now();
                let bounds: Vec<(u32, u32)> =
                    row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
                let gather: Vec<&VarRun> = refs.clone();
                let mut out = Vec::new();
                for p in VarRunMerger::with_bounds_kernel(refs, &bounds, MergeMode::Ovc, tree_kernel)
                {
                    out.extend_from_slice(gather[p.run as usize].frame_at(p.pos as usize));
                }
                (out, t0.elapsed())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("range merge thread"))
            .collect::<Vec<_>>()
    });
    for (buf, d) in outputs {
        stats.merge_time += d;
        stats.merge_range_time.push(d);
        timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
    }
    Ok(())
}

/// Sort var-len `source` into `sink` entirely in memory — the var-len
/// [`crate::driver::one_pass`].
pub fn one_pass_var<Src, Snk>(
    source: &mut Src,
    sink: &mut Snk,
    cfg: &SortConfig,
) -> io::Result<SortOutcome>
where
    Src: RecordSource,
    Snk: RecordSink,
{
    assert!(cfg.run_records > 0 && cfg.gather_batch > 0);
    let mut top = obs::span(obs::phase::ONE_PASS);
    let t_start = Instant::now();
    let mut stats = SortStats {
        one_pass: true,
        ..Default::default()
    };

    // ---- input + framing: cut run buffers at record-count boundaries ------
    let mut framer = VarFramer::new();
    let mut run_bufs: Vec<Vec<u8>> = Vec::new();
    let mut cur: Vec<u8> = Vec::new();
    let mut cur_records = 0usize;
    loop {
        let t0 = Instant::now();
        let chunk = source.next_chunk();
        stats.read_wait += t0.elapsed();
        let Some(chunk) = chunk? else { break };
        stats.bytes_sorted += chunk.len() as u64;
        framer.push(&chunk, |frame: &[u8]| {
            cur.extend_from_slice(frame);
            cur_records += 1;
            if cur_records == cfg.run_records {
                run_bufs.push(std::mem::take(&mut cur));
                cur_records = 0;
            }
            Ok::<(), io::Error>(())
        })?;
    }
    framer.finish()?;
    if !cur.is_empty() {
        run_bufs.push(cur);
    }

    // ---- run formation ----------------------------------------------------
    let runs = timed_phase(obs::phase::SORT, &mut stats.sort_time, || {
        form_runs(run_bufs, cfg.workers)
    })?;
    for r in &runs {
        stats.runs += 1;
        stats.run_lengths.push(r.len() as u64);
        stats.records += r.len() as u64;
    }
    if stats.records == 0 {
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::OnePass,
        });
    }

    // ---- merge + gather + output ------------------------------------------
    if cfg.merge_workers > 0 {
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        let plan = timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
            let p = plan_var_partitions_with(&lens, cfg.merge_workers, SAMPLES_PER_RANGE, |r, pos| {
                Ok::<_, std::convert::Infallible>(runs[r].key_at(pos as usize).to_vec())
            });
            match p {
                Ok(p) => p,
                Err(e) => match e {},
            }
        });
        stats.merge_range_records = plan.range_records.clone();
        partitioned_merge(&runs, &plan, cfg, &mut stats, sink)?;
    } else {
        let refs: Vec<&VarRun> = runs.iter().collect();
        let mut merger = VarRunMerger::new_with_kernel(refs, MergeMode::Ovc, cfg.kernel.tree());
        let mut ptrs = Vec::with_capacity(cfg.gather_batch);
        loop {
            ptrs.clear();
            timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
                for _ in 0..cfg.gather_batch {
                    match merger.next() {
                        Some(p) => ptrs.push(p),
                        None => break,
                    }
                }
            });
            if ptrs.is_empty() {
                break;
            }
            let mut buf = Vec::new();
            timed_phase(obs::phase::GATHER, &mut stats.gather_time, || {
                gather_var_into(&runs, &ptrs, &mut buf)
            });
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
        }
    }
    let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
    stats.elapsed = t_start.elapsed();
    obs::metrics::counter_add("sort.records", stats.records);
    obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
    top.attr("records", stats.records);
    top.attr("bytes", stats.bytes_sorted);
    Ok(SortOutcome {
        stats,
        bytes,
        plan: PassPlan::OnePass,
    })
}

/// In-memory scratch for var-len two-pass sorts: sealed runs tagged with
/// the input record index they start at, recovered spans packed around by
/// the same cursor dance as [`crate::driver::MemScratch`].
#[derive(Default)]
pub struct MemVarScratch {
    runs: Vec<(u64, VarRun)>,
    cursor: u64,
    pending_spans: VecDeque<RecoveredRun>,
    recovered: Vec<RecoveredRun>,
}

impl MemVarScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch that pretends to have survived a crash: each entry is a
    /// sealed run payload (sorted var-len frames) tagged with the input
    /// record index it starts at. Payloads are re-validated on the way in
    /// ([`VarRun::presorted`]) — a corrupt "recovered" run is an error
    /// here, not a silent mis-merge later.
    pub fn with_recovered(runs: Vec<(u64, Vec<u8>)>) -> io::Result<Self> {
        let mut parsed = Vec::with_capacity(runs.len());
        for (start, data) in runs {
            parsed.push((start, VarRun::presorted(data)?));
        }
        let mut spans: Vec<RecoveredRun> = parsed
            .iter()
            .map(|(start, run)| RecoveredRun {
                start_record: *start,
                records: run.len() as u64,
            })
            .collect();
        spans.sort_by_key(|s| s.start_record);
        Ok(MemVarScratch {
            runs: parsed,
            cursor: 0,
            pending_spans: spans.iter().copied().collect(),
            recovered: spans,
        })
    }

    /// Number of sealed runs (recovered ones included).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Spans surviving from a previous attempt, sorted by start.
    pub fn recovered_runs(&self) -> Vec<RecoveredRun> {
        self.recovered.clone()
    }

    /// Seal a freshly formed run: it starts where the cursor is, jumping
    /// over any recovered span the cursor has reached (that range is
    /// already covered).
    fn seal(&mut self, run: VarRun) {
        while let Some(s) = self.pending_spans.front() {
            if s.start_record == self.cursor {
                self.cursor += s.records;
                self.pending_spans.pop_front();
            } else {
                break;
            }
        }
        let records = run.len() as u64;
        self.runs.push((self.cursor, run));
        self.cursor += records;
    }

    /// The sealed runs in input order — what the merge tie-break needs (a
    /// resumed scratch seals re-formed runs after the recovered ones even
    /// though they interleave in the input).
    fn runs_in_input_order(&mut self) -> Vec<&VarRun> {
        self.runs.sort_by_key(|(start, _)| *start);
        self.runs.iter().map(|(_, r)| r).collect()
    }
}

/// Sort var-len `source` into `sink`, staging runs in `scratch` — the
/// var-len [`crate::driver::two_pass`]. A resumed scratch's recovered
/// spans are skipped during pass 1 (their records already sit in scratch,
/// sorted) and only the gaps are re-formed.
pub fn two_pass_var<Src, Snk>(
    source: &mut Src,
    sink: &mut Snk,
    scratch: &mut MemVarScratch,
    cfg: &SortConfig,
) -> io::Result<SortOutcome>
where
    Src: RecordSource,
    Snk: RecordSink,
{
    assert!(cfg.run_records > 0 && cfg.gather_batch > 0);
    let mut top = obs::span(obs::phase::TWO_PASS);
    let t_start = Instant::now();
    let mut stats = SortStats {
        one_pass: false,
        ..Default::default()
    };

    // ---- pass 1: frame, skip recovered spans, form + seal gap runs --------
    let mut pending: VecDeque<RecoveredRun> = {
        let mut spans = scratch.recovered_runs();
        spans.sort_by_key(|r| r.start_record);
        spans.into()
    };
    let resuming = !pending.is_empty();
    let mut framer = VarFramer::new();
    let mut cur: Vec<u8> = Vec::new();
    let mut cur_records = 0usize;
    // Absolute record index within the input.
    let mut abs_rec: u64 = 0;
    // Borrowed mutably by the closure below; drained into stats afterwards.
    let mut sort_time = std::time::Duration::ZERO;
    let mut seal_counters = (0u64, Vec::new()); // (runs_reformed, run_lengths)
    loop {
        let t0 = Instant::now();
        let chunk = source.next_chunk();
        stats.read_wait += t0.elapsed();
        let Some(chunk) = chunk? else { break };
        stats.bytes_sorted += chunk.len() as u64;
        framer.push(&chunk, |frame: &[u8]| -> io::Result<()> {
            // Inside a recovered span: the record already sits in scratch,
            // sorted. A gap run in progress must end exactly here.
            if let Some(s) = pending.front() {
                if abs_rec >= s.start_record {
                    if cur_records > 0 {
                        let run = timed_phase(obs::phase::SORT, &mut sort_time, || {
                            VarRun::from_frames(std::mem::take(&mut cur))
                        })?;
                        seal_counters.0 += 1;
                        seal_counters.1.push(run.len() as u64);
                        scratch.seal(run);
                        cur_records = 0;
                    }
                    abs_rec += 1;
                    if abs_rec == s.start_record + s.records {
                        pending.pop_front();
                    }
                    return Ok(());
                }
            }
            cur.extend_from_slice(frame);
            cur_records += 1;
            abs_rec += 1;
            let until_span = pending
                .front()
                .map(|s| s.start_record == abs_rec)
                .unwrap_or(false);
            if cur_records == cfg.run_records || until_span {
                let run = timed_phase(obs::phase::SORT, &mut sort_time, || {
                    VarRun::from_frames(std::mem::take(&mut cur))
                })?;
                seal_counters.0 += 1;
                seal_counters.1.push(run.len() as u64);
                scratch.seal(run);
                cur_records = 0;
            }
            Ok(())
        })?;
    }
    framer.finish()?;
    if cur_records > 0 {
        let run = timed_phase(obs::phase::SORT, &mut sort_time, || {
            VarRun::from_frames(std::mem::take(&mut cur))
        })?;
        seal_counters.0 += 1;
        seal_counters.1.push(run.len() as u64);
        scratch.seal(run);
    }
    stats.sort_time += sort_time;
    if resuming {
        stats.runs_reformed = seal_counters.0;
        obs::metrics::counter_add("run.reformed", seal_counters.0);
    }
    if let Some(s) = pending.front() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "recovered var-len run covering records {}..{} extends past the \
                 input ({abs_rec} records read); wrong or truncated input for \
                 this scratch",
                s.start_record,
                s.start_record + s.records,
            ),
        ));
    }
    for s in &scratch.recovered {
        stats.runs_recovered += 1;
        obs::metrics::counter_add("run.recovered", 1);
        seal_counters.1.push(s.records);
    }
    stats.runs = scratch.run_count() as u64;
    stats.records = seal_counters.1.iter().sum();
    stats.run_lengths = seal_counters.1;

    if stats.records == 0 {
        let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
        stats.elapsed = t_start.elapsed();
        return Ok(SortOutcome {
            stats,
            bytes,
            plan: PassPlan::TwoPass,
        });
    }

    // ---- pass 2: final merge in input order -------------------------------
    let refs = scratch.runs_in_input_order();
    if cfg.merge_workers > 0 {
        let lens: Vec<u64> = refs.iter().map(|r| r.len() as u64).collect();
        let plan = timed_phase(obs::phase::MERGE, &mut stats.merge_time, || {
            let p = plan_var_partitions_with(&lens, cfg.merge_workers, SAMPLES_PER_RANGE, |r, pos| {
                Ok::<_, std::convert::Infallible>(refs[r].key_at(pos as usize).to_vec())
            });
            match p {
                Ok(p) => p,
                Err(e) => match e {},
            }
        });
        stats.merge_range_records = plan.range_records.clone();
        let tree_kernel = cfg.kernel.tree();
        let track = obs::current_track();
        let outputs = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(plan.ranges());
            for (range, row) in plan.bounds.iter().enumerate() {
                let refs = refs.clone();
                let records = plan.range_records[range];
                let track = track.clone();
                handles.push(scope.spawn(move || {
                    obs::adopt_track(track);
                    let mut g = obs::span(obs::phase::MERGE);
                    g.attr("range", range as u64);
                    g.attr("records", records);
                    let t0 = Instant::now();
                    let bounds: Vec<(u32, u32)> =
                        row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
                    let gather = refs.clone();
                    let mut out = Vec::new();
                    for p in
                        VarRunMerger::with_bounds_kernel(refs, &bounds, MergeMode::Ovc, tree_kernel)
                    {
                        out.extend_from_slice(gather[p.run as usize].frame_at(p.pos as usize));
                    }
                    (out, t0.elapsed())
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("range merge thread"))
                .collect::<Vec<_>>()
        });
        for (buf, d) in outputs {
            stats.merge_time += d;
            stats.merge_range_time.push(d);
            timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.push(&buf))?;
        }
    } else {
        // Serial: stream cursors supply formation-time LCP hints, so the
        // winner's successor offset is O(1) here too.
        let cursors: Vec<VarRunCursor> = refs.iter().map(|r| VarRunCursor::new(r)).collect();
        let mut merger =
            VarStreamMerger::new_with_kernel(cursors, MergeMode::Ovc, cfg.kernel.tree());
        let mut staging: Vec<u8> = Vec::new();
        loop {
            let done = timed_phase(
                obs::phase::MERGE,
                &mut stats.merge_time,
                || -> io::Result<bool> {
                    for _ in 0..cfg.gather_batch {
                        if !merger.next_into(&mut staging)? {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                },
            )?;
            if !staging.is_empty() {
                timed_phase(obs::phase::WRITE, &mut stats.write_wait, || {
                    sink.push(&staging)
                })?;
                staging.clear();
            }
            if done {
                break;
            }
        }
    }
    let bytes = timed_phase(obs::phase::WRITE, &mut stats.write_wait, || sink.complete())?;
    stats.elapsed = t_start.elapsed();
    obs::metrics::counter_add("sort.records", stats.records);
    obs::metrics::counter_add("sort.bytes", stats.bytes_sorted);
    top.attr("records", stats.records);
    top.attr("bytes", stats.bytes_sorted);
    Ok(SortOutcome {
        stats,
        bytes,
        plan: PassPlan::TwoPass,
    })
}

/// Whole-buffer baseline: form one run, emit its sorted frames. The
/// differential oracle's cheapest var-len reference after `sort_by` itself.
pub fn sort_var_bytes(input: &[u8]) -> io::Result<Vec<u8>> {
    Ok(VarRun::from_frames(input.to_vec())?.sorted_bytes())
}

/// Shared-nothing partitioned baseline: sample byte-string splitters,
/// scatter frames by [`route_bytes`], sort each part independently, and
/// concatenate. Routing is pure in the key and scatter preserves arrival
/// order within a part, so the result is byte-identical to
/// [`sort_var_bytes`] for any `parts`.
pub fn partition_sort_var(input: &[u8], parts: usize) -> io::Result<Vec<u8>> {
    assert!(parts >= 1);
    let recs = alphasort_dmgen::var_records_of(input)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let n = recs.len();
    let mut pool = Vec::new();
    if parts > 1 && n > 0 {
        let count = (parts * SAMPLES_PER_RANGE).min(n);
        for i in 0..count {
            let idx = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64;
            pool.push(recs[idx as usize].key().to_vec());
        }
    }
    let splitters = byte_splitters_from_keys(pool, parts);
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); parts];
    for r in &recs {
        outs[route_bytes(r.key(), &splitters)].extend_from_slice(r.frame());
    }
    let mut out = Vec::with_capacity(input.len());
    for part in outs {
        out.extend_from_slice(&VarRun::from_frames(part)?.sorted_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{MemSink, MemSource};
    use alphasort_dmgen::{generate_varlen, var_records_of, TextCorpus, VarGenConfig};

    fn corpus_bytes(corpus: TextCorpus, n: u64, seed: u64) -> Vec<u8> {
        generate_varlen(VarGenConfig {
            records: n,
            seed,
            corpus,
        })
    }

    fn stable_reference(buf: &[u8]) -> Vec<u8> {
        let recs = var_records_of(buf).unwrap();
        let mut idx: Vec<usize> = (0..recs.len()).collect();
        idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()));
        let mut out = Vec::with_capacity(buf.len());
        for i in idx {
            out.extend_from_slice(recs[i].frame());
        }
        out
    }

    fn one_pass_of(data: &[u8], cfg: &SortConfig) -> (Vec<u8>, SortOutcome) {
        let mut source = MemSource::new(data.to_vec(), 4_099); // ragged on purpose
        let mut sink = MemSink::new();
        let outcome = one_pass_var(&mut source, &mut sink, cfg).unwrap();
        (sink.into_inner(), outcome)
    }

    fn two_pass_of(data: &[u8], cfg: &SortConfig) -> (Vec<u8>, SortOutcome) {
        let mut source = MemSource::new(data.to_vec(), 4_099);
        let mut sink = MemSink::new();
        let mut scratch = MemVarScratch::new();
        let outcome = two_pass_var(&mut source, &mut sink, &mut scratch, cfg).unwrap();
        (sink.into_inner(), outcome)
    }

    #[test]
    fn one_pass_matches_stable_sort_on_every_corpus() {
        let cfg = SortConfig {
            run_records: 150,
            gather_batch: 64,
            ..Default::default()
        };
        for corpus in TextCorpus::ALL {
            let data = corpus_bytes(corpus, 800, 0x51);
            let (got, outcome) = one_pass_of(&data, &cfg);
            assert_eq!(got, stable_reference(&data), "{}", corpus.name());
            assert_eq!(outcome.stats.records, 800);
            assert_eq!(outcome.bytes as usize, data.len());
        }
    }

    #[test]
    fn workers_and_partitioned_merge_are_byte_identical() {
        let data = corpus_bytes(TextCorpus::Urls, 3_000, 0x52);
        let base = SortConfig {
            run_records: 250,
            gather_batch: 100,
            ..Default::default()
        };
        let (serial, _) = one_pass_of(&data, &base);
        for (workers, merge_workers) in [(2, 0), (3, 1), (2, 2), (4, 4), (2, 8)] {
            let cfg = SortConfig {
                workers,
                merge_workers,
                ..base.clone()
            };
            let (got, outcome) = one_pass_of(&data, &cfg);
            assert_eq!(got, serial, "workers={workers} merge_workers={merge_workers}");
            if merge_workers > 0 {
                assert_eq!(outcome.stats.merge_range_records.len(), merge_workers);
                assert_eq!(
                    outcome.stats.merge_range_records.iter().sum::<u64>(),
                    3_000
                );
            }
        }
    }

    #[test]
    fn two_pass_matches_one_pass() {
        let cfg = SortConfig {
            run_records: 120,
            gather_batch: 77,
            ..Default::default()
        };
        for corpus in [
            TextCorpus::LogLines,
            TextCorpus::ZipfianWords { max_words: 4 },
            TextCorpus::EmptyKey,
        ] {
            let data = corpus_bytes(corpus, 900, 0x53);
            let (one, _) = one_pass_of(&data, &cfg);
            let (two, outcome) = two_pass_of(&data, &cfg);
            assert_eq!(two, one, "{}", corpus.name());
            assert!(!outcome.stats.one_pass);
            assert_eq!(outcome.stats.runs, 900usize.div_ceil(120) as u64);
        }
    }

    #[test]
    fn two_pass_partitioned_is_byte_identical() {
        let data = corpus_bytes(
            TextCorpus::SharedMegaPrefix {
                prefix: 32,
                suffix: 6,
            },
            2_000,
            0x54,
        );
        let base = SortConfig {
            run_records: 170,
            gather_batch: 64,
            ..Default::default()
        };
        let (serial, _) = two_pass_of(&data, &base);
        for merge_workers in [1, 2, 4, 8] {
            let cfg = SortConfig {
                merge_workers,
                ..base.clone()
            };
            let (got, outcome) = two_pass_of(&data, &cfg);
            assert_eq!(got, serial, "{merge_workers} ranges diverged");
            assert_eq!(outcome.stats.merge_range_records.len(), merge_workers);
        }
    }

    #[test]
    fn resumed_two_pass_reuses_recovered_runs() {
        // A previous attempt formed the middle run (records 300..600): the
        // retry must skip that input range, re-form only the flanks, and
        // still produce the serial output byte for byte.
        let data = corpus_bytes(TextCorpus::Urls, 1_200, 0x55);
        let cfg = SortConfig {
            run_records: 300,
            gather_batch: 100,
            ..Default::default()
        };
        let (serial, _) = two_pass_of(&data, &cfg);
        let recs = var_records_of(&data).unwrap();
        let mut middle: Vec<u8> = Vec::new();
        let mut idx: Vec<usize> = (300..600).collect();
        idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()).then(a.cmp(&b)));
        for i in idx {
            middle.extend_from_slice(recs[i].frame());
        }
        for merge_workers in [0, 3] {
            let mut source = MemSource::new(data.clone(), 4_099);
            let mut sink = MemSink::new();
            let mut scratch = MemVarScratch::with_recovered(vec![(300, middle.clone())]).unwrap();
            let cfg = SortConfig {
                merge_workers,
                ..cfg.clone()
            };
            let outcome = two_pass_var(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
            assert_eq!(outcome.stats.runs, 4);
            assert_eq!(outcome.stats.runs_recovered, 1);
            assert_eq!(outcome.stats.runs_reformed, 3);
            assert_eq!(sink.data(), &serial[..], "merge_workers={merge_workers}");
        }
    }

    #[test]
    fn recovered_span_past_input_is_an_error() {
        let data = corpus_bytes(TextCorpus::Urls, 100, 0x56);
        let sorted = stable_reference(&data);
        let mut source = MemSource::new(data, 4_099);
        let mut sink = MemSink::new();
        // Claims to cover records 500..600 of a 100-record input.
        let mut scratch = MemVarScratch::with_recovered(vec![(500, sorted)]).unwrap();
        let err = two_pass_var(&mut source, &mut sink, &mut scratch, &SortConfig::default())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("extends past the input"), "{err}");
    }

    #[test]
    fn truncated_input_is_attributed() {
        let mut data = corpus_bytes(TextCorpus::LogLines, 50, 0x57);
        data.truncate(data.len() - 3);
        let mut source = MemSource::new(data, 512);
        let mut sink = MemSink::new();
        let err = one_pass_var(&mut source, &mut sink, &SortConfig::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("mid-record"), "{err}");
    }

    #[test]
    fn empty_input() {
        let mut source = MemSource::new(Vec::new(), 512);
        let mut sink = MemSink::new();
        let outcome = one_pass_var(&mut source, &mut sink, &SortConfig::default()).unwrap();
        assert_eq!(outcome.bytes, 0);
        assert_eq!(outcome.stats.records, 0);
        let mut source = MemSource::new(Vec::new(), 512);
        let mut scratch = MemVarScratch::new();
        let outcome =
            two_pass_var(&mut source, &mut sink, &mut scratch, &SortConfig::default()).unwrap();
        assert_eq!(outcome.stats.records, 0);
    }

    #[test]
    fn partition_sort_matches_serial_baseline() {
        for corpus in TextCorpus::ALL {
            let data = corpus_bytes(corpus, 700, 0x58);
            let serial = sort_var_bytes(&data).unwrap();
            assert_eq!(serial, stable_reference(&data), "{}", corpus.name());
            for parts in [1, 2, 4, 8] {
                assert_eq!(
                    partition_sort_var(&data, parts).unwrap(),
                    serial,
                    "{} parts={parts}",
                    corpus.name()
                );
            }
        }
    }
}
