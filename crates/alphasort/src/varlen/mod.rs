//! Variable-length records with string keys — the second [`crate::RecordLayout`].
//!
//! The paper sorts fixed 100-byte Datamation records; real sort inputs
//! (URLs, log lines, words) are ragged. This module generalizes the
//! AlphaSort pipeline to length-prefixed records with (offset, length) key
//! descriptors, keeping the paper's cache discipline:
//!
//! * **Run formation** ([`vrun`]) still sorts *(key-prefix, pointer)*
//!   entries — the prefix is the first 8 key bytes zero-padded
//!   ([`crate::entry::key_prefix_u64`]), order-faithful where prefixes
//!   differ, with the full-key overflow path on ties. Formation also
//!   precomputes each run's `lcp_prev` table (LCP of neighbouring sorted
//!   keys), which the merge reuses.
//! * **Merging** ([`vmerge`]) threads offset-value codes through the loser
//!   tree: tree replays resolve on offsets alone where they differ and
//!   compare only key *suffixes* where they tie, so shared prefixes are
//!   never rescanned. [`MergeEffort`](crate::ovc::MergeEffort) counts key
//!   bytes touched; the bench trajectory holds OVC against the naive
//!   full-key merge.
//! * **Drivers** ([`vdriver`]) mirror the fixed one-pass/two-pass shape:
//!   overlapped run formation, serial or splitter-partitioned merges
//!   (byte-identical either way), and resumable two-pass runs.
//!
//! Layout choice moves CPU time only: for a given input every kernel,
//! worker count, and merge mode produces byte-identical output, pinned by
//! the differential oracle.

pub mod vdriver;
pub mod vmerge;
pub mod vrun;

pub use vdriver::{one_pass_var, partition_sort_var, sort_var_bytes, two_pass_var, MemVarScratch};
pub use vmerge::{MergeMode, VarRunCursor, VarRunMerger, VarRunStream, VarStreamMerger};
pub use vrun::{lcp, VarFramer, VarRun};
