//! LCP/OVC-aware merging of variable-length runs.
//!
//! The var-len counterparts of [`crate::merge`]'s two mergers, with the
//! offset-value coding of [`crate::ovc`] threaded through the loser tree:
//! every head carries `off[h]` = exact LCP of its key with the **last
//! emitted key** (the base). Since every live head is ≥ the base,
//!
//! * `off[a] > off[b]`  ⇒  `key_a < key_b` — no byte compares at all;
//! * equal offsets compare bytes only from the offset onward, so tree
//!   replay skips the common prefix instead of rescanning it.
//!
//! After emitting a winner, other heads re-code for free by the `min` rule
//! when their offset differs from the winner's old offset; equal-offset
//! heads extend by scanning from the offset. The winner's *successor*
//! codes against its in-run predecessor — exactly the record just emitted —
//! so its offset is the [`VarRun::lcp_with_prev`] table lookup computed at
//! run formation: O(1), no rescan.
//!
//! [`MergeMode::Naive`] runs the same tournament with whole-key compares;
//! [`MergeEffort`] counts both so the bench trajectory can show the
//! shared-prefix corpora where OVC wins (and the random-key corpora where
//! the paper predicts it will not).

use std::io;

use crate::entry::checked_run_len;
use crate::kernels::TreeKernel;
use crate::merge::MergedPtr;
use crate::ovc::MergeEffort;
use crate::rs::LoserTree;
use crate::varlen::vrun::{lcp, VarRun};

/// How head-to-head comparisons resolve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeMode {
    /// Offset-value coded: compare offsets, then only the key suffix.
    #[default]
    Ovc,
    /// Whole-key byte compares (the baseline OVC is judged against).
    Naive,
}

/// Compare two key suffixes from byte `from`, counting examined bytes.
/// Exhaustion order: a key that runs out first is the smaller (a strict
/// prefix sorts before its extensions); both out ⇒ equal.
#[inline]
fn suffix_less(
    ka: &[u8],
    kb: &[u8],
    from: usize,
    tie: bool,
    effort: &mut MergeEffort,
) -> bool {
    let mut i = from;
    loop {
        match (ka.get(i), kb.get(i)) {
            (None, None) => return tie,
            (None, Some(_)) => return true,
            (Some(_), None) => return false,
            (Some(&x), Some(&y)) => {
                effort.key_bytes += 2;
                if x != y {
                    return x < y;
                }
            }
        }
        i += 1;
    }
}

/// Head comparison shared by construction and replay. `tie` outcomes break
/// toward the lower leaf index, which is run order — the stability rule.
#[allow(clippy::too_many_arguments)]
#[inline]
fn leaf_less(
    runs: &[&VarRun],
    pos: &[u32],
    end: &[u32],
    off: &[u32],
    mode: MergeMode,
    effort: &mut MergeEffort,
    a: usize,
    b: usize,
) -> bool {
    let a_live = pos[a] < end[a];
    let b_live = pos[b] < end[b];
    match (a_live, b_live) {
        (false, _) => false,
        (true, false) => true,
        (true, true) => {
            effort.compares += 1;
            let ka = runs[a].key_at(pos[a] as usize);
            let kb = runs[b].key_at(pos[b] as usize);
            match mode {
                MergeMode::Naive => suffix_less(ka, kb, 0, a < b, effort),
                MergeMode::Ovc => {
                    let (oa, ob) = (off[a], off[b]);
                    if oa != ob {
                        // Deeper agreement with the base ⇒ smaller key.
                        return oa > ob;
                    }
                    suffix_less(ka, kb, oa as usize, a < b, effort)
                }
            }
        }
    }
}

/// K-way merger over in-memory [`VarRun`]s, yielding [`MergedPtr`]s in
/// global key order — the var-len [`crate::merge::RunMerger`].
pub struct VarRunMerger<'a> {
    runs: Vec<&'a VarRun>,
    pos: Vec<u32>,
    end: Vec<u32>,
    /// `off[h]` = exact LCP of head `h`'s key with the last emitted key.
    off: Vec<u32>,
    tree: LoserTree,
    tree_kernel: TreeKernel,
    mode: MergeMode,
    remaining: usize,
    /// Comparison-effort counters (built up across the whole merge).
    pub effort: MergeEffort,
}

impl<'a> VarRunMerger<'a> {
    /// Merge whole runs.
    ///
    /// # Panics
    /// If `runs` is empty or a run exceeds the 32-bit index ceiling.
    pub fn new(runs: Vec<&'a VarRun>, mode: MergeMode) -> Self {
        Self::new_with_kernel(runs, mode, TreeKernel::Branchy)
    }

    /// [`new`](Self::new) with an explicit tree-replay kernel.
    pub fn new_with_kernel(runs: Vec<&'a VarRun>, mode: MergeMode, tree_kernel: TreeKernel) -> Self {
        let bounds: Vec<(u32, u32)> = runs
            .iter()
            .map(|r| (0, checked_run_len(r.len(), "VarRunMerger::new run")))
            .collect();
        Self::with_bounds_kernel(runs, &bounds, mode, tree_kernel)
    }

    /// Merge only `bounds[r] = [start, end)` of each run's sorted order —
    /// one range of a partitioned merge. Equal keys still tie-break by run
    /// index, so concatenating range merges planned by
    /// [`crate::pmerge::plan_var_partitions_with`] reproduces the serial
    /// merge byte for byte.
    pub fn with_bounds_kernel(
        runs: Vec<&'a VarRun>,
        bounds: &[(u32, u32)],
        mode: MergeMode,
        tree_kernel: TreeKernel,
    ) -> Self {
        assert!(!runs.is_empty(), "need at least one run to merge");
        assert_eq!(bounds.len(), runs.len(), "one bound pair per run");
        let mut pos = Vec::with_capacity(runs.len());
        let mut end = Vec::with_capacity(runs.len());
        let mut remaining = 0usize;
        for (r, &(s, e)) in runs.iter().zip(bounds) {
            assert!(s <= e && e as usize <= r.len(), "bounds outside run");
            pos.push(s);
            end.push(e);
            remaining += (e - s) as usize;
        }
        // No base yet: lcp(anything, nothing) = 0 exactly, so equal-offset
        // comparisons scan from byte 0 — plain full-key compares until the
        // first record is emitted.
        let off = vec![0u32; runs.len()];
        let mut effort = MergeEffort::default();
        let tree = LoserTree::new(runs.len(), |a, b| {
            leaf_less(&runs, &pos, &end, &off, mode, &mut effort, a, b)
        });
        VarRunMerger {
            runs,
            pos,
            end,
            off,
            tree,
            tree_kernel,
            mode,
            remaining,
            effort,
        }
    }

    /// Total records still to come.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for VarRunMerger<'_> {
    type Item = MergedPtr;

    fn next(&mut self) -> Option<MergedPtr> {
        if self.remaining == 0 {
            return None;
        }
        let Self {
            runs,
            pos,
            end,
            off,
            tree,
            tree_kernel,
            mode,
            remaining,
            effort,
        } = self;
        let w = tree.winner();
        let emitted = pos[w] as usize;
        let out = MergedPtr {
            run: w as u32,
            pos: pos[w],
        };
        let w_off = off[w] as usize;
        pos[w] += 1;
        *remaining -= 1;

        if *mode == MergeMode::Ovc {
            let base = runs[w].key_at(emitted);
            // Re-code every other live head against the new base: the min
            // rule is free; equal-offset heads extend by scanning from the
            // old shared offset (they agree with the new base at least that
            // far, since both agreed with the old base exactly that far).
            for h in 0..runs.len() {
                if h == w || pos[h] >= end[h] {
                    continue;
                }
                let o = off[h] as usize;
                if o != w_off {
                    off[h] = off[h].min(w_off as u32);
                } else {
                    let hk = runs[h].key_at(pos[h] as usize);
                    let n = hk.len().min(base.len());
                    let mut i = w_off;
                    while i < n {
                        effort.key_bytes += 1;
                        if hk[i] != base[i] {
                            break;
                        }
                        i += 1;
                    }
                    off[h] = i as u32;
                }
            }
            // The winner's successor codes against its in-run predecessor —
            // the record just emitted — which run formation precomputed.
            if pos[w] < end[w] {
                off[w] = runs[w].lcp_with_prev(pos[w] as usize) as u32;
            }
        }
        tree.replay_with(*tree_kernel, |a, b| {
            leaf_less(runs, pos, end, off, *mode, effort, a, b)
        });
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// A stream of key-ascending var-len records (one run coming back from
/// scratch in a two-pass sort).
pub trait VarRunStream {
    /// Key of the head record, `None` when exhausted.
    fn head_key(&self) -> Option<&[u8]>;
    /// Whole frame of the head record.
    fn head_frame(&self) -> Option<&[u8]>;
    /// Discard the head. Returns the LCP of the *new* head's key with the
    /// record just discarded when the stream knows it (sealed runs carry
    /// the formation-time table); `None` means the merger must scan.
    fn advance(&mut self) -> io::Result<Option<u32>>;
}

/// A [`VarRunStream`] over a (possibly bounded) window of a [`VarRun`].
pub struct VarRunCursor<'a> {
    run: &'a VarRun,
    pos: usize,
    end: usize,
}

impl<'a> VarRunCursor<'a> {
    /// Stream the whole run.
    pub fn new(run: &'a VarRun) -> Self {
        VarRunCursor {
            run,
            pos: 0,
            end: run.len(),
        }
    }

    /// Stream sorted positions `[start, end)`.
    pub fn with_bounds(run: &'a VarRun, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= run.len(), "bounds outside run");
        VarRunCursor { run, pos: start, end }
    }
}

impl VarRunStream for VarRunCursor<'_> {
    fn head_key(&self) -> Option<&[u8]> {
        (self.pos < self.end).then(|| self.run.key_at(self.pos))
    }

    fn head_frame(&self) -> Option<&[u8]> {
        (self.pos < self.end).then(|| self.run.frame_at(self.pos))
    }

    fn advance(&mut self) -> io::Result<Option<u32>> {
        self.pos += 1;
        Ok((self.pos < self.end).then(|| self.run.lcp_with_prev(self.pos) as u32))
    }
}

/// Stream head comparison: same contract as [`leaf_less`], but heads come
/// from the streams and liveness is `head_key().is_some()`.
#[inline]
fn stream_leaf_less<S: VarRunStream>(
    streams: &[S],
    off: &[u32],
    mode: MergeMode,
    effort: &mut MergeEffort,
    a: usize,
    b: usize,
) -> bool {
    match (streams[a].head_key(), streams[b].head_key()) {
        (None, _) => false,
        (Some(_), None) => true,
        (Some(ka), Some(kb)) => {
            effort.compares += 1;
            match mode {
                MergeMode::Naive => suffix_less(ka, kb, 0, a < b, effort),
                MergeMode::Ovc => {
                    let (oa, ob) = (off[a], off[b]);
                    if oa != ob {
                        return oa > ob;
                    }
                    suffix_less(ka, kb, oa as usize, a < b, effort)
                }
            }
        }
    }
}

/// K-way merger over var-len record streams — the var-len
/// [`crate::merge::StreamMerger`], with the same offset-value coding as
/// [`VarRunMerger`]. The base key is copied out before the winner advances
/// (the stream may drop its storage); successor offsets use the stream's
/// LCP hint when it has one and a scan against the copied base otherwise.
pub struct VarStreamMerger<S: VarRunStream> {
    streams: Vec<S>,
    off: Vec<u32>,
    /// The last emitted key (the OVC base), owned.
    base: Vec<u8>,
    tree: LoserTree,
    tree_kernel: TreeKernel,
    mode: MergeMode,
    /// Comparison-effort counters.
    pub effort: MergeEffort,
}

impl<S: VarRunStream> VarStreamMerger<S> {
    /// Start merging `streams` (each key-ascending).
    ///
    /// # Panics
    /// If `streams` is empty.
    pub fn new(streams: Vec<S>, mode: MergeMode) -> Self {
        Self::new_with_kernel(streams, mode, TreeKernel::Branchy)
    }

    /// [`new`](Self::new) with an explicit tree-replay kernel.
    pub fn new_with_kernel(streams: Vec<S>, mode: MergeMode, tree_kernel: TreeKernel) -> Self {
        assert!(!streams.is_empty(), "need at least one stream to merge");
        let off = vec![0u32; streams.len()];
        let mut effort = MergeEffort::default();
        let tree = LoserTree::new(streams.len(), |a, b| {
            stream_leaf_less(&streams, &off, mode, &mut effort, a, b)
        });
        VarStreamMerger {
            streams,
            off,
            base: Vec::new(),
            tree,
            tree_kernel,
            mode,
            effort,
        }
    }

    /// Append the next frame in global key order to `out`; `false` when
    /// every stream is exhausted.
    pub fn next_into(&mut self, out: &mut Vec<u8>) -> io::Result<bool> {
        let Self {
            streams,
            off,
            base,
            tree,
            tree_kernel,
            mode,
            effort,
        } = self;
        let w = tree.winner();
        let Some(frame) = streams[w].head_frame() else {
            return Ok(false);
        };
        out.extend_from_slice(frame);
        let w_off = off[w] as usize;
        base.clear();
        base.extend_from_slice(streams[w].head_key().expect("live head has a key"));

        if *mode == MergeMode::Ovc {
            for h in 0..streams.len() {
                if h == w {
                    continue;
                }
                let Some(hk) = streams[h].head_key() else {
                    continue;
                };
                let o = off[h] as usize;
                if o != w_off {
                    off[h] = off[h].min(w_off as u32);
                } else {
                    let n = hk.len().min(base.len());
                    let mut i = w_off;
                    while i < n {
                        effort.key_bytes += 1;
                        if hk[i] != base[i] {
                            break;
                        }
                        i += 1;
                    }
                    off[h] = i as u32;
                }
            }
        }
        let hint = streams[w].advance()?;
        if *mode == MergeMode::Ovc {
            off[w] = match (hint, streams[w].head_key()) {
                (_, None) => 0,
                (Some(h), Some(_)) => h,
                (None, Some(nk)) => {
                    let l = lcp(nk, base);
                    effort.key_bytes += l as u64 + 1;
                    l as u32
                }
            };
        }
        tree.replay_with(*tree_kernel, |a, b| {
            stream_leaf_less(streams, off, *mode, effort, a, b)
        });
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate_varlen, parse_var_record, var_records_of, TextCorpus, VarGenConfig};

    fn runs_of(corpus: TextCorpus, n: u64, per: usize, seed: u64) -> (Vec<u8>, Vec<VarRun>) {
        let buf = generate_varlen(VarGenConfig {
            records: n,
            seed,
            corpus,
        });
        let mut runs = Vec::new();
        let mut cur = Vec::new();
        let mut count = 0usize;
        let mut off = 0usize;
        while off < buf.len() {
            let r = parse_var_record(&buf[off..], off as u64).unwrap();
            cur.extend_from_slice(r.frame());
            off += r.len();
            count += 1;
            if count == per {
                runs.push(VarRun::from_frames(std::mem::take(&mut cur)).unwrap());
                count = 0;
            }
        }
        if !cur.is_empty() {
            runs.push(VarRun::from_frames(cur).unwrap());
        }
        (buf, runs)
    }

    fn stable_reference(buf: &[u8]) -> Vec<u8> {
        let recs = var_records_of(buf).unwrap();
        let mut idx: Vec<usize> = (0..recs.len()).collect();
        idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()));
        let mut out = Vec::with_capacity(buf.len());
        for i in idx {
            out.extend_from_slice(recs[i].frame());
        }
        out
    }

    fn merged_bytes(runs: &[VarRun], mode: MergeMode) -> (Vec<u8>, MergeEffort) {
        let mut m = VarRunMerger::new(runs.iter().collect(), mode);
        let mut out = Vec::new();
        for p in &mut m {
            // Cannot hold the borrow across iterations; re-resolve.
            out.push(p);
        }
        let mut bytes = Vec::new();
        for p in out {
            bytes.extend_from_slice(runs[p.run as usize].frame_at(p.pos as usize));
        }
        (bytes, m.effort)
    }

    #[test]
    fn ovc_merge_matches_stable_sort_on_every_corpus() {
        for corpus in TextCorpus::ALL {
            let (buf, runs) = runs_of(corpus, 600, 140, 0x3D);
            let (got, _) = merged_bytes(&runs, MergeMode::Ovc);
            assert_eq!(got, stable_reference(&buf), "{}", corpus.name());
            let (naive, _) = merged_bytes(&runs, MergeMode::Naive);
            assert_eq!(naive, got, "{} naive diverged", corpus.name());
        }
    }

    #[test]
    fn ovc_saves_bytes_on_shared_prefixes() {
        let (_, runs) = runs_of(
            TextCorpus::SharedMegaPrefix {
                prefix: 48,
                suffix: 8,
            },
            2_000,
            250,
            5,
        );
        let (_, ovc) = merged_bytes(&runs, MergeMode::Ovc);
        let (_, naive) = merged_bytes(&runs, MergeMode::Naive);
        assert!(
            ovc.key_bytes * 4 < naive.key_bytes,
            "ovc {} vs naive {}",
            ovc.key_bytes,
            naive.key_bytes
        );
    }

    #[test]
    fn stream_merger_matches_run_merger() {
        for mode in [MergeMode::Ovc, MergeMode::Naive] {
            let (buf, runs) = runs_of(TextCorpus::Urls, 500, 120, 9);
            let (want, _) = merged_bytes(&runs, mode);
            let cursors: Vec<VarRunCursor> = runs.iter().map(VarRunCursor::new).collect();
            let mut m = VarStreamMerger::new(cursors, mode);
            let mut got = Vec::new();
            while m.next_into(&mut got).unwrap() {}
            assert_eq!(got, want, "{mode:?}");
            assert_eq!(got, stable_reference(&buf), "{mode:?}");
        }
    }

    #[test]
    fn bounded_merges_concatenate_to_the_full_merge() {
        let (_, runs) = runs_of(TextCorpus::ZipfianWords { max_words: 3 }, 900, 130, 2);
        let refs: Vec<&VarRun> = runs.iter().collect();
        let full: Vec<MergedPtr> =
            VarRunMerger::new(refs.clone(), MergeMode::Ovc).collect();
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        let plan = crate::pmerge::plan_var_partitions_with(&lens, 4, 16, |r, pos| {
            Ok::<_, std::convert::Infallible>(runs[r].key_at(pos as usize).to_vec())
        })
        .unwrap();
        let mut cat = Vec::new();
        for row in &plan.bounds {
            let b: Vec<(u32, u32)> = row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
            cat.extend(VarRunMerger::with_bounds_kernel(
                refs.clone(),
                &b,
                MergeMode::Ovc,
                TreeKernel::Branchy,
            ));
        }
        assert_eq!(cat, full);
    }

    #[test]
    fn branchless_replay_is_pointer_identical() {
        let (_, runs) = runs_of(TextCorpus::LogLines, 700, 90, 4);
        let refs: Vec<&VarRun> = runs.iter().collect();
        let a: Vec<MergedPtr> = VarRunMerger::new(refs.clone(), MergeMode::Ovc).collect();
        let b: Vec<MergedPtr> =
            VarRunMerger::new_with_kernel(refs, MergeMode::Ovc, TreeKernel::Branchless).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn single_run_and_empty_runs() {
        let (buf, runs) = runs_of(TextCorpus::Urls, 100, 100, 8);
        let (got, _) = merged_bytes(&runs, MergeMode::Ovc);
        assert_eq!(got, stable_reference(&buf));
        let empty = VarRun::from_frames(Vec::new()).unwrap();
        let with_empty = vec![&runs[0], &empty];
        let merged: Vec<MergedPtr> = VarRunMerger::new(with_empty, MergeMode::Ovc).collect();
        assert_eq!(merged.len(), 100);
    }
}
