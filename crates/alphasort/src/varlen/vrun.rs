//! Variable-length run formation: framing, the prefix-entry sort, and the
//! per-run LCP table the OVC merge feeds on.
//!
//! The fixed layout cuts runs by byte stride; here a [`VarFramer`]
//! reassembles length-prefixed frames across arbitrary chunk boundaries
//! (truncated trailing records are rejected with an attributed error), and
//! [`VarRun::from_frames`] sorts a run the AlphaSort way: *(key-prefix,
//! index)* entries built from the first key bytes — zero-padded big-endian,
//! so integer order is faithful wherever prefixes differ — with an overflow
//! path to the full key for long or tied keys, and arrival index last so
//! the permutation is unique (which is what makes every driver
//! configuration byte-identical to stable sort).
//!
//! Formation also precomputes `lcp_prev[p]` = longest common prefix of the
//! keys at sorted positions `p-1` and `p`. During an OVC merge the record
//! after an emitted winner codes against exactly its in-run predecessor, so
//! the successor's offset-value code is a table lookup instead of a rescan.

use std::io;

use alphasort_dmgen::{parse_var_record, VarFrameError, VAR_HEADER_LEN};

use crate::entry::{checked_run_len, key_prefix_u64};
use crate::kernel::quicksort_by;

/// Longest common prefix of two byte strings.
#[inline]
pub fn lcp(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

fn frame_err(e: VarFrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Reassembles whole frames from arbitrary byte chunks — the var-len
/// counterpart of the fixed layout's "is the buffer a RECORD_LEN multiple"
/// check, except the boundary can land anywhere inside a frame.
#[derive(Default)]
pub struct VarFramer {
    pending: Vec<u8>,
    /// Absolute input offset of `pending[0]` (error attribution).
    abs: u64,
}

impl VarFramer {
    /// Fresh framer at input offset 0.
    pub fn new() -> Self {
        VarFramer::default()
    }

    /// Feed a chunk; `emit` receives every frame completed by it. Frames
    /// split across chunks are buffered until whole. Structurally invalid
    /// headers (oversized body, key descriptor past the body) fail
    /// immediately with the input offset in the message.
    pub fn push<E>(
        &mut self,
        chunk: &[u8],
        mut emit: impl FnMut(&[u8]) -> Result<(), E>,
    ) -> io::Result<()>
    where
        io::Error: From<E>,
    {
        self.pending.extend_from_slice(chunk);
        let mut start = 0usize;
        loop {
            match parse_var_record(&self.pending[start..], self.abs + start as u64) {
                Ok(r) => {
                    let len = r.len();
                    emit(&self.pending[start..start + len])?;
                    start += len;
                }
                // Not enough bytes yet: wait for the next chunk.
                Err(VarFrameError::TruncatedHeader { .. })
                | Err(VarFrameError::TruncatedBody { .. }) => break,
                Err(e) => return Err(frame_err(e)),
            }
        }
        self.pending.drain(..start);
        self.abs += start as u64;
        Ok(())
    }

    /// End of input: any buffered partial frame is a truncated trailing
    /// record — an attributed `InvalidData` error, never a silent drop.
    pub fn finish(self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let e = parse_var_record(&self.pending, self.abs)
            .expect_err("partial frame cannot parse");
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "input ends mid-record ({} trailing bytes): {e}",
                self.pending.len()
            ),
        ))
    }
}

/// Descriptor of one record within a [`VarRun`]'s buffer, arrival order.
#[derive(Clone, Copy, Debug)]
struct RecDesc {
    /// Frame start within the buffer.
    off: u32,
    /// Whole frame length (header + body).
    len: u32,
    /// Absolute key start within the buffer.
    key_off: u32,
    /// Key length.
    key_len: u32,
}

/// One sorted run of variable-length records: the raw frame buffer, a
/// descriptor per record, the sorted permutation, and the `lcp_prev` table.
pub struct VarRun {
    buf: Vec<u8>,
    descs: Vec<RecDesc>,
    /// `order[p]` = arrival index of the record at sorted position `p`.
    order: Vec<u32>,
    /// `lcp_prev[p]` = lcp of sorted keys `p-1` and `p` (`lcp_prev[0]` = 0).
    lcp_prev: Vec<u32>,
}

impl VarRun {
    /// Parse `buf` (whole frames) and sort it.
    pub fn from_frames(buf: Vec<u8>) -> io::Result<VarRun> {
        Self::build(buf, false)
    }

    /// Parse `buf` whose frames are already key-ascending (a sealed scratch
    /// run read back for the merge): no sort, but the LCP table is still
    /// computed so resumed merges get the same O(1) successor coding.
    pub fn presorted(buf: Vec<u8>) -> io::Result<VarRun> {
        Self::build(buf, true)
    }

    fn build(buf: Vec<u8>, presorted: bool) -> io::Result<VarRun> {
        checked_run_len(buf.len(), "VarRun frame buffer bytes");
        let mut descs = Vec::new();
        let mut off = 0usize;
        while off < buf.len() {
            let r = parse_var_record(&buf[off..], off as u64).map_err(frame_err)?;
            let body_off = off + VAR_HEADER_LEN;
            let key = r.key();
            let key_off = body_off + (key.as_ptr() as usize - r.body().as_ptr() as usize);
            descs.push(RecDesc {
                off: off as u32,
                len: r.len() as u32,
                key_off: key_off as u32,
                key_len: key.len() as u32,
            });
            off += r.len();
        }
        checked_run_len(descs.len(), "VarRun::from_frames");

        let key_of = |d: &RecDesc| &buf[d.key_off as usize..(d.key_off + d.key_len) as usize];
        let order: Vec<u32> = if presorted {
            (0..descs.len() as u32).collect()
        } else {
            // (key-prefix, arrival index) entries; the comparator overflows
            // to the full key only on prefix ties (short or shared-prefix
            // keys), then to arrival order — the unique stable permutation.
            let mut entries: Vec<(u64, u32)> = descs
                .iter()
                .enumerate()
                .map(|(i, d)| (key_prefix_u64(key_of(d)), i as u32))
                .collect();
            quicksort_by(&mut entries, |a, b| {
                if a.0 != b.0 {
                    a.0 < b.0
                } else {
                    let (ka, kb) = (key_of(&descs[a.1 as usize]), key_of(&descs[b.1 as usize]));
                    (ka, a.1) < (kb, b.1)
                }
            });
            entries.into_iter().map(|(_, i)| i).collect()
        };

        let mut lcp_prev = vec![0u32; order.len()];
        for p in 1..order.len() {
            let ka = key_of(&descs[order[p - 1] as usize]);
            let kb = key_of(&descs[order[p] as usize]);
            lcp_prev[p] = lcp(ka, kb) as u32;
        }

        // Presorted buffers must actually be sorted: a scratch run that came
        // back out of order is corruption, not a valid merge input.
        if presorted {
            for p in 1..order.len() {
                let ka = key_of(&descs[order[p - 1] as usize]);
                let kb = key_of(&descs[order[p] as usize]);
                if ka > kb {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("presorted var-len run out of order at record {p}"),
                    ));
                }
            }
        }

        Ok(VarRun {
            buf,
            descs,
            order,
            lcp_prev,
        })
    }

    /// Records in the run.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Total frame bytes.
    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    #[inline]
    fn desc_at(&self, pos: usize) -> &RecDesc {
        &self.descs[self.order[pos] as usize]
    }

    /// Key of the record at sorted position `pos`.
    #[inline]
    pub fn key_at(&self, pos: usize) -> &[u8] {
        let d = self.desc_at(pos);
        &self.buf[d.key_off as usize..(d.key_off + d.key_len) as usize]
    }

    /// Whole frame of the record at sorted position `pos`.
    #[inline]
    pub fn frame_at(&self, pos: usize) -> &[u8] {
        let d = self.desc_at(pos);
        &self.buf[d.off as usize..(d.off + d.len) as usize]
    }

    /// LCP of the keys at sorted positions `pos - 1` and `pos` (0 at the
    /// run head) — the merge's O(1) successor offset code.
    #[inline]
    pub fn lcp_with_prev(&self, pos: usize) -> usize {
        self.lcp_prev[pos] as usize
    }

    /// The sorted frames, concatenated — what a scratch spill writes.
    pub fn sorted_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len());
        for p in 0..self.len() {
            out.extend_from_slice(self.frame_at(p));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{build_var_record, generate_varlen, var_records_of, TextCorpus, VarGenConfig};

    fn corpus_buf(corpus: TextCorpus, n: u64, seed: u64) -> Vec<u8> {
        generate_varlen(VarGenConfig {
            records: n,
            seed,
            corpus,
        })
    }

    #[test]
    fn framer_reassembles_across_ragged_chunks() {
        let buf = corpus_buf(TextCorpus::Urls, 300, 1);
        for chunk in [1usize, 7, 64, 1000, buf.len()] {
            let mut framer = VarFramer::new();
            let mut frames = 0usize;
            let mut bytes = 0usize;
            for c in buf.chunks(chunk) {
                framer
                    .push(c, |f| {
                        frames += 1;
                        bytes += f.len();
                        Ok::<_, io::Error>(())
                    })
                    .unwrap();
            }
            framer.finish().unwrap();
            assert_eq!((frames, bytes), (300, buf.len()), "chunk {chunk}");
        }
    }

    #[test]
    fn framer_rejects_truncated_tail_with_offset() {
        let mut buf = corpus_buf(TextCorpus::LogLines, 10, 2);
        let cut = buf.len() - 3;
        buf.truncate(cut);
        let mut framer = VarFramer::new();
        framer.push(&buf, |_| Ok::<_, io::Error>(())).unwrap();
        let err = framer.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("input ends mid-record"), "{err}");
    }

    #[test]
    fn framer_rejects_corrupt_header_immediately() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&9u16.to_le_bytes()); // key_off 9 > body 4
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        let mut framer = VarFramer::new();
        let err = framer.push(&buf, |_| Ok::<_, io::Error>(())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn run_sort_matches_stable_sort_on_every_corpus() {
        for corpus in TextCorpus::ALL {
            let buf = corpus_buf(corpus, 400, 0xA1);
            let run = VarRun::from_frames(buf.clone()).unwrap();
            let mut expect: Vec<Vec<u8>> = var_records_of(&buf)
                .unwrap()
                .iter()
                .map(|r| r.frame().to_vec())
                .collect();
            expect.sort_by(|a, b| {
                let (ra, rb) = (
                    parse_var_record(a, 0).unwrap(),
                    parse_var_record(b, 0).unwrap(),
                );
                ra.key().cmp(rb.key())
            });
            let got: Vec<Vec<u8>> = (0..run.len()).map(|p| run.frame_at(p).to_vec()).collect();
            assert_eq!(got, expect, "{}", corpus.name());
        }
    }

    #[test]
    fn lcp_table_is_exact() {
        for corpus in [
            TextCorpus::SharedMegaPrefix {
                prefix: 20,
                suffix: 4,
            },
            TextCorpus::PrefixChain { max_len: 24 },
            TextCorpus::Urls,
        ] {
            let run = VarRun::from_frames(corpus_buf(corpus, 300, 7)).unwrap();
            assert_eq!(run.lcp_with_prev(0), 0);
            for p in 1..run.len() {
                assert_eq!(
                    run.lcp_with_prev(p),
                    lcp(run.key_at(p - 1), run.key_at(p)),
                    "{} pos {p}",
                    corpus.name()
                );
            }
        }
    }

    #[test]
    fn presorted_validates_order() {
        let run = VarRun::from_frames(corpus_buf(TextCorpus::Urls, 50, 3)).unwrap();
        let sorted = run.sorted_bytes();
        let re = VarRun::presorted(sorted).unwrap();
        assert_eq!(re.len(), 50);
        // A deliberately unsorted buffer must be refused.
        let mut bad = Vec::new();
        bad.extend_from_slice(&build_var_record(b"zzz", b"AAAAAAAA"));
        bad.extend_from_slice(&build_var_record(b"aaa", b"BBBBBBBB"));
        assert!(VarRun::presorted(bad).is_err());
    }

    #[test]
    fn empty_run() {
        let run = VarRun::from_frames(Vec::new()).unwrap();
        assert!(run.is_empty());
        assert_eq!(run.sorted_bytes(), Vec::<u8>::new());
    }
}
