//! Splitter sampling and key routing — the probabilistic-splitting recipe
//! shared by the shared-nothing baseline, netsort's coordinator, and the
//! partitioned parallel merge ([`crate::pmerge`]).
//!
//! Keys are sampled with a deterministic golden-ratio stride, the pooled
//! sample is sorted, and its quantiles become the splitters. Everything
//! downstream routes with the same pure function of the key
//! ([`route`]: first interval whose upper splitter exceeds the key, equal
//! keys go right), so a record's destination never depends on which node,
//! run, or range examined it — the property the partitioned merge's
//! stability argument rests on.

use alphasort_dmgen::{records_of, KEY_LEN, RECORD_LEN};

/// Sample up to `count` keys from `input` (whole records) with a
/// golden-ratio stride, returning them concatenated (KEY_LEN bytes each) —
/// the payload of a netsort `Frame::Sample`.
pub fn sample_keys(input: &[u8], count: usize) -> Vec<u8> {
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let records = records_of(input);
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let count = count.min(n);
    let mut out = Vec::with_capacity(count * KEY_LEN);
    for i in 0..count {
        let idx = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64;
        out.extend_from_slice(&records[idx as usize].key);
    }
    out
}

/// Pick `parts - 1` splitter keys from a pooled key sample. The pool is
/// sorted and its quantiles become the splitters, so every part's key
/// range should hold roughly the same record count.
pub fn splitters_from_keys(mut pool: Vec<[u8; KEY_LEN]>, parts: usize) -> Vec<[u8; KEY_LEN]> {
    assert!(parts >= 1);
    pool.sort_unstable();
    if pool.is_empty() {
        // No data anywhere: any splitters partition nothing correctly.
        return vec![[0u8; KEY_LEN]; parts - 1];
    }
    (1..parts).map(|k| pool[k * pool.len() / parts]).collect()
}

/// Pick `nodes - 1` splitter keys from pooled sample payloads (the
/// concatenated-key form [`sample_keys`] produces).
pub fn compute_splitters(samples: &[Vec<u8>], nodes: usize) -> Vec<[u8; KEY_LEN]> {
    let mut pool: Vec<[u8; KEY_LEN]> = Vec::new();
    for payload in samples {
        assert!(payload.len().is_multiple_of(KEY_LEN), "ragged sample");
        for key in payload.chunks_exact(KEY_LEN) {
            pool.push(key.try_into().expect("KEY_LEN chunk"));
        }
    }
    splitters_from_keys(pool, nodes)
}

/// Serialize splitters for a netsort `Frame::Splitters` payload.
pub fn encode_splitters(splitters: &[[u8; KEY_LEN]]) -> Vec<u8> {
    splitters.concat()
}

/// Parse a netsort `Frame::Splitters` payload.
pub fn decode_splitters(payload: &[u8]) -> Vec<[u8; KEY_LEN]> {
    assert!(payload.len().is_multiple_of(KEY_LEN), "ragged splitters");
    payload
        .chunks_exact(KEY_LEN)
        .map(|k| k.try_into().expect("KEY_LEN chunk"))
        .collect()
}

/// Which part owns `key` under `splitters`: the first interval whose upper
/// splitter exceeds the key (keys equal to a splitter go right). A pure
/// function of the key, so duplicates never straddle parts.
#[inline]
pub fn route(key: &[u8; KEY_LEN], splitters: &[[u8; KEY_LEN]]) -> usize {
    splitters.partition_point(|s| s <= key)
}

/// Pick `parts - 1` splitters from a pooled sample of *byte-string* keys —
/// the var-len layout's quantile recipe. Same contract as
/// [`splitters_from_keys`]: sorted quantiles, empty pool degrades to empty
/// splitters (everything routes to part 0... via [`route_bytes`] an empty
/// key ties every empty splitter and goes right, which still partitions
/// nothing incorrectly because there is nothing to partition).
pub fn byte_splitters_from_keys(mut pool: Vec<Vec<u8>>, parts: usize) -> Vec<Vec<u8>> {
    assert!(parts >= 1);
    pool.sort_unstable();
    if pool.is_empty() {
        return vec![Vec::new(); parts - 1];
    }
    (1..parts)
        .map(|k| pool[k * pool.len() / parts].clone())
        .collect()
}

/// [`route`] for byte-string keys: first interval whose upper splitter
/// exceeds the key, equal keys go right. Pure in the key, so the var-len
/// partitioned merge inherits the fixed layout's stability argument.
#[inline]
pub fn route_bytes(key: &[u8], splitters: &[Vec<u8>]) -> usize {
    splitters.partition_point(|s| s.as_slice() <= key)
}

/// Scatter `input` (whole records) into one byte buffer per part.
pub fn partition_records(input: &[u8], splitters: &[[u8; KEY_LEN]]) -> Vec<Vec<u8>> {
    assert!(input.len().is_multiple_of(RECORD_LEN));
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); splitters.len() + 1];
    for r in records_of(input) {
        outs[route(&r.key, splitters)].extend_from_slice(r.as_bytes());
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution};

    #[test]
    fn splitters_balance_random_keys() {
        let (input, _) = generate(GenConfig::datamation(40_000, 11));
        let sample = sample_keys(&input, 1024);
        let splitters = compute_splitters(&[sample], 8);
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let parts = partition_records(&input, &splitters);
        let ideal = 40_000.0 / 8.0;
        for p in &parts {
            let records = (p.len() / RECORD_LEN) as f64;
            assert!(records < ideal * 1.5, "partition holds {records}");
        }
    }

    #[test]
    fn routing_respects_splitter_intervals() {
        let splitters = [[5u8; KEY_LEN], [9u8; KEY_LEN]];
        assert_eq!(route(&[0u8; KEY_LEN], &splitters), 0);
        assert_eq!(route(&[5u8; KEY_LEN], &splitters), 1); // equal goes right
        assert_eq!(route(&[7u8; KEY_LEN], &splitters), 1);
        assert_eq!(route(&[255u8; KEY_LEN], &splitters), 2);
        assert_eq!(route(&[3u8; KEY_LEN], &[]), 0); // one part, no splitters
    }

    #[test]
    fn partitions_concatenate_to_input_multiset_in_key_order() {
        let (input, _) = generate(GenConfig {
            records: 5_000,
            seed: 3,
            dist: KeyDistribution::DupHeavy { cardinality: 4 },
        });
        let sample = sample_keys(&input, 256);
        let splitters = compute_splitters(&[sample], 4);
        let parts = partition_records(&input, &splitters);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, input.len());
        // Every key in partition i is <= every key in partition i+1 (ranges
        // are disjoint up to the splitter-equality rule).
        for w in parts.windows(2) {
            let max_lo = records_of(&w[0]).iter().map(|r| r.key).max();
            let min_hi = records_of(&w[1]).iter().map(|r| r.key).min();
            if let (Some(lo), Some(hi)) = (max_lo, min_hi) {
                assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn byte_splitters_agree_with_fixed_splitters_on_fixed_keys() {
        let (input, _) = generate(GenConfig::datamation(3_000, 17));
        let fixed = decode_splitters(&sample_keys(&input, 400));
        let bytes: Vec<Vec<u8>> = fixed.iter().map(|k| k.to_vec()).collect();
        let fs = splitters_from_keys(fixed, 6);
        let bs = byte_splitters_from_keys(bytes, 6);
        assert_eq!(fs.len(), bs.len());
        for (f, b) in fs.iter().zip(&bs) {
            assert_eq!(&f[..], &b[..]);
            assert_eq!(route(f, &fs), route_bytes(b, &bs));
        }
    }

    #[test]
    fn route_bytes_handles_empty_and_prefix_keys() {
        let splitters = vec![b"app".to_vec(), b"apple".to_vec()];
        assert_eq!(route_bytes(b"", &splitters), 0);
        assert_eq!(route_bytes(b"ap", &splitters), 0);
        assert_eq!(route_bytes(b"app", &splitters), 1); // equal goes right
        assert_eq!(route_bytes(b"appl", &splitters), 1);
        assert_eq!(route_bytes(b"apple", &splitters), 2);
        assert_eq!(route_bytes(b"zebra", &splitters), 2);
        assert_eq!(route_bytes(b"anything", &[]), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let splitters = vec![[1u8; KEY_LEN], [200u8; KEY_LEN]];
        assert_eq!(decode_splitters(&encode_splitters(&splitters)), splitters);
    }

    #[test]
    fn empty_cluster_input_still_produces_splitters() {
        let splitters = compute_splitters(&[Vec::new(), Vec::new()], 4);
        assert_eq!(splitters.len(), 3);
        assert!(partition_records(&[], &splitters).iter().all(Vec::is_empty));
    }

    #[test]
    fn splitters_from_keys_matches_payload_path() {
        let (input, _) = generate(GenConfig::datamation(2_000, 9));
        let payload = sample_keys(&input, 300);
        let keys = decode_splitters(&payload);
        assert_eq!(
            splitters_from_keys(keys, 5),
            compute_splitters(&[payload], 5)
        );
    }
}
