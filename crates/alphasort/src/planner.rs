//! One-pass vs. two-pass planning (§6).
//!
//! Mechanically: if the input (plus the sort's working overhead) fits the
//! memory budget, sort in one pass; otherwise spill runs to scratch and
//! merge them back. The *economic* question — whether to buy memory or
//! scratch disks — is modeled in `alphasort-perfmodel`'s economics module;
//! this planner only applies the capacity rule.

/// Whether the sort runs in one or two passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassPlan {
    /// Whole input resident; QuickSort runs, merge from memory.
    OnePass,
    /// Runs spilled to scratch; second pass merges them back.
    TwoPass,
}

/// Capacity-rule planner.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    memory_budget: u64,
}

impl Planner {
    /// Fraction of the budget usable for record buffers; the rest covers
    /// the entry arrays (12–16 bytes per 100-byte record) and IO buffers.
    /// 1/1.10 leaves the paper's "extend the address space by 110 MB for a
    /// 100 MB sort" headroom (§7).
    const RECORD_FRACTION: f64 = 1.0 / 1.10;

    /// Planner with a memory budget in bytes.
    pub fn new(memory_budget: u64) -> Self {
        Planner { memory_budget }
    }

    /// Largest input this budget can sort in one pass.
    pub fn one_pass_capacity(&self) -> u64 {
        (self.memory_budget as f64 * Self::RECORD_FRACTION) as u64
    }

    /// Choose the plan for an input of `input_bytes`.
    pub fn plan(&self, input_bytes: u64) -> PassPlan {
        if input_bytes <= self.one_pass_capacity() {
            PassPlan::OnePass
        } else {
            PassPlan::TwoPass
        }
    }

    /// Plan the pass structure *and* the hot-path kernel. Today the planner
    /// forwards the caller's requested kernel unchanged — every registered
    /// kernel is byte-identical, so the choice is pure CPU policy — but the
    /// kernel decision sits in the planning path so a future cost model
    /// (e.g. radix only when runs exceed the cache) has one place to live.
    pub fn plan_with_kernel(
        &self,
        input_bytes: u64,
        requested: crate::kernels::Kernel,
    ) -> (PassPlan, crate::kernels::Kernel) {
        (self.plan(input_bytes), requested)
    }

    /// Size the two-pass knobs for an input of `input_bytes`:
    /// run size (one memory-full of records), merge fan-in (bounded by the
    /// read-ahead buffers the merge needs), and the resulting cascade depth.
    pub fn two_pass_plan(&self, input_bytes: u64) -> TwoPassPlan {
        let record_len = alphasort_dmgen::RECORD_LEN as u64;
        let run_bytes = self.one_pass_capacity().max(record_len);
        let run_records = (run_bytes / record_len).max(1) as usize;
        let runs = input_bytes.div_ceil(run_bytes).max(1);

        // During the merge, each open run wants a read-ahead buffer; give
        // each 1/256 of memory but at least one gather batch of records.
        let per_run_buffer = (self.memory_budget / 256).max(64 * record_len);
        let max_fanin = ((self.memory_budget / per_run_buffer) as usize).max(2);

        // Cascade depth: levels of fan-in-wide merging until one remains.
        let mut merge_passes = 0u32;
        let mut remaining = runs;
        while remaining > max_fanin as u64 {
            remaining = remaining.div_ceil(max_fanin as u64);
            merge_passes += 1;
        }
        TwoPassPlan {
            run_records,
            max_fanin,
            expected_runs: runs,
            merge_passes,
        }
    }
}

/// Sizing produced by [`Planner::two_pass_plan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoPassPlan {
    /// Records per formation run (one memory-full).
    pub run_records: usize,
    /// Merge fan-in the memory budget supports.
    pub max_fanin: usize,
    /// Runs the input will produce.
    pub expected_runs: u64,
    /// Intermediate cascade merge passes before the final merge.
    pub merge_passes: u32,
}

impl TwoPassPlan {
    /// Disk traffic as a multiple of a one-pass sort's (§6's "a two-pass
    /// sort requires twice the disk bandwidth"): 2 for plain two-pass, +1
    /// per cascade level (each level re-writes and re-reads everything
    /// once).
    pub fn bandwidth_multiplier(&self) -> u32 {
        2 + self.merge_passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_sorts_in_one_pass() {
        let p = Planner::new(110 << 20);
        assert_eq!(p.plan(100 << 20), PassPlan::OnePass);
    }

    #[test]
    fn oversized_input_needs_two_passes() {
        let p = Planner::new(110 << 20);
        assert_eq!(p.plan(1 << 30), PassPlan::TwoPass);
    }

    #[test]
    fn boundary_respects_overhead_headroom() {
        // Exactly at budget: entry arrays would not fit → two passes.
        let p = Planner::new(100 << 20);
        assert_eq!(p.plan(100 << 20), PassPlan::TwoPass);
        assert_eq!(p.plan(p.one_pass_capacity()), PassPlan::OnePass);
    }

    #[test]
    fn two_pass_plan_sizes_are_consistent() {
        // 1 GB sort on a 64 MB machine.
        let p = Planner::new(64 << 20);
        let plan = p.two_pass_plan(1 << 30);
        assert!(plan.run_records > 0);
        // runs ≈ input / run_bytes.
        let run_bytes = plan.run_records as u64 * 100;
        assert_eq!(plan.expected_runs, (1u64 << 30).div_ceil(run_bytes));
        // 18 runs on a fan-in-256 budget: single final merge.
        assert!(plan.max_fanin >= 2);
        assert_eq!(plan.merge_passes, 0);
        assert_eq!(plan.bandwidth_multiplier(), 2);
    }

    #[test]
    fn huge_input_on_tiny_memory_needs_cascades() {
        // 1 GB on 1 MB of memory: thousands of runs, fan-in bounded.
        let p = Planner::new(1 << 20);
        let plan = p.two_pass_plan(1 << 30);
        assert!(plan.expected_runs > 1_000);
        assert!(plan.merge_passes >= 1, "plan {plan:?}");
        assert!(plan.bandwidth_multiplier() >= 3);
    }

    #[test]
    fn cascade_depth_matches_log_of_runs() {
        let p = Planner::new(1 << 20); // fan-in will be small-ish
        let plan = p.two_pass_plan(1 << 34); // 16 GB on 1 MB
                                             // remaining runs shrink by ×fanin per pass; verify the arithmetic.
        let mut remaining = plan.expected_runs;
        for _ in 0..plan.merge_passes {
            remaining = remaining.div_ceil(plan.max_fanin as u64);
        }
        assert!(remaining <= plan.max_fanin as u64);
    }

    #[test]
    fn kernel_planning_forwards_the_request_and_agrees_with_plan() {
        let p = Planner::new(110 << 20);
        for k in crate::kernels::Kernel::ALL {
            let (plan, kernel) = p.plan_with_kernel(100 << 20, k);
            assert_eq!(plan, p.plan(100 << 20));
            assert_eq!(kernel, k);
            let (plan, kernel) = p.plan_with_kernel(1 << 30, k);
            assert_eq!(plan, PassPlan::TwoPass);
            assert_eq!(kernel, k);
        }
    }

    #[test]
    fn datamation_on_paper_machine_is_one_pass() {
        // The DEC 7000 in §7 had 256 MB; the 100 MB benchmark is one-pass.
        let p = Planner::new(256 << 20);
        assert_eq!(p.plan(100_000_000), PassPlan::OnePass);
    }
}
