//! The QuickSort kernel.
//!
//! A classic three-sample-median QuickSort with an insertion-sort finish,
//! as used by AlphaSort for run formation: "QuickSort is faster because it
//! is simpler, makes fewer exchanges on average, and has superior address
//! locality" (§4). Recursing into the smaller side and looping on the
//! larger bounds stack depth at O(log n) even on adversarial input, so the
//! N² worst case costs time but never the stack.
//!
//! The comparator is a `less` predicate passed by value, letting callers
//! count comparisons (the experiments do) without any cost when they don't.

/// Below this length insertion sort takes over — cheaper than partitioning
/// and the paper's point: the tail of the sort runs in the on-chip cache.
pub const INSERTION_CUTOFF: usize = 24;

/// Sort `v` with the given strict-order predicate (`less(a, b)` ⇔ `a < b`).
///
/// Not stable. Run formation does not need stability: record order within
/// equal keys is free under the benchmark's permutation rule, and the merge
/// phase restores determinism by breaking ties on run number.
///
/// ```
/// use alphasort_core::kernel::quicksort_by;
///
/// let mut v = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
/// let mut compares = 0;
/// quicksort_by(&mut v, |a, b| { compares += 1; a < b });
/// assert_eq!(v, [1, 1, 2, 3, 4, 5, 6, 9]);
/// assert!(compares > 0);
/// ```
pub fn quicksort_by<T: Copy, F: FnMut(&T, &T) -> bool>(v: &mut [T], mut less: F) {
    quicksort_rec(v, &mut less);
}

fn quicksort_rec<T: Copy, F: FnMut(&T, &T) -> bool>(mut v: &mut [T], less: &mut F) {
    loop {
        let n = v.len();
        if n <= INSERTION_CUTOFF {
            insertion_sort_by(v, less);
            return;
        }
        let p = partition(v, less);
        // Recurse on the smaller side; loop on the larger.
        let (lo, hi) = v.split_at_mut(p);
        let hi = &mut hi[1..]; // pivot already placed
        if lo.len() < hi.len() {
            quicksort_rec(lo, less);
            v = hi;
        } else {
            quicksort_rec(hi, less);
            v = lo;
        }
    }
}

/// Median-of-three pivot selection + Hoare-style partition.
/// Returns the pivot's final index; everything left is `!less(pivot, x)`.
///
/// The scan loops are bounds-guarded: the sentinel at `v[n-1]` makes the
/// guards free in practice (a consistent comparator stops the scans before
/// the guards trip), but an *inconsistent* comparator — one where
/// `less(a, b)` and `less(b, a)` can both hold, as a buggy caller predicate
/// or a NaN-style partial order produces — must yield at worst a mis-sorted
/// slice, never an out-of-bounds index or a `0 - 1` underflow.
pub(crate) fn partition<T: Copy, F: FnMut(&T, &T) -> bool>(v: &mut [T], less: &mut F) -> usize {
    let n = v.len();
    let mid = n / 2;
    // Sort v[0], v[mid], v[n-1] so the median lands at mid.
    if less(&v[mid], &v[0]) {
        v.swap(mid, 0);
    }
    if less(&v[n - 1], &v[mid]) {
        v.swap(n - 1, mid);
        if less(&v[mid], &v[0]) {
            v.swap(mid, 0);
        }
    }
    // Move pivot to n-2 (v[n-1] is already ≥ pivot, acting as sentinel).
    v.swap(mid, n - 2);
    let pivot = v[n - 2];
    let mut i = 0;
    let mut j = n - 2;
    loop {
        loop {
            i += 1;
            if i >= n - 1 || !less(&v[i], &pivot) {
                break;
            }
        }
        loop {
            if j == 0 {
                break;
            }
            j -= 1;
            if !less(&pivot, &v[j]) {
                break;
            }
        }
        if i >= j {
            break;
        }
        v.swap(i, j);
    }
    // With a consistent comparator i ≤ n-2 always holds; the clamp only
    // matters when a broken predicate ran the upward scan into the sentinel.
    let p = i.min(n - 2);
    v.swap(p, n - 2);
    p
}

/// Insertion sort (used below [`INSERTION_CUTOFF`] and directly by tests).
pub fn insertion_sort_by<T: Copy, F: FnMut(&T, &T) -> bool>(v: &mut [T], less: &mut F) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && less(&x, &v[j - 1]) {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorts(mut v: Vec<u64>) {
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort_by(&mut v, |a, b| a < b);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_empty_and_singleton() {
        check_sorts(vec![]);
        check_sorts(vec![42]);
    }

    #[test]
    fn sorts_small_arrays() {
        check_sorts(vec![3, 1, 2]);
        check_sorts(vec![2, 2, 2, 1]);
        check_sorts((0..INSERTION_CUTOFF as u64).rev().collect());
    }

    #[test]
    fn sorts_random_large() {
        let mut state = 0x12345u64;
        let v: Vec<u64> = (0..50_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        check_sorts(v);
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        check_sorts((0..10_000).collect());
        check_sorts((0..10_000).rev().collect());
    }

    #[test]
    fn sorts_all_equal() {
        check_sorts(vec![7; 10_000]);
    }

    #[test]
    fn sorts_organ_pipe() {
        let mut v: Vec<u64> = (0..5_000).collect();
        v.extend((0..5_000).rev());
        check_sorts(v);
    }

    #[test]
    fn sorts_few_distinct_values() {
        let mut state = 1u64;
        let v: Vec<u64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 3
            })
            .collect();
        check_sorts(v);
    }

    #[test]
    fn custom_comparator_reverses() {
        let mut v = vec![1u64, 5, 3, 2];
        quicksort_by(&mut v, |a, b| a > b);
        assert_eq!(v, vec![5, 3, 2, 1]);
    }

    #[test]
    fn comparison_count_is_n_log_n_ish() {
        let mut state = 9u64;
        let mut v: Vec<u64> = (0..100_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let mut compares = 0u64;
        quicksort_by(&mut v, |a, b| {
            compares += 1;
            a < b
        });
        // n log2 n ≈ 1.66 M for n = 100 k; QuickSort's constant is ~1.4.
        // Anything under 4 M rules out accidental quadratic behaviour.
        assert!(compares < 4_000_000, "compares: {compares}");
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Output contract for inconsistent comparators: still a permutation of
    /// the input (likely mis-sorted), reached without a panic.
    fn check_permutes(mut v: Vec<u64>, mut less: impl FnMut(&u64, &u64) -> bool) {
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort_by(&mut v, &mut less);
        v.sort_unstable();
        assert_eq!(v, expect, "inconsistent comparator lost or invented elements");
    }

    #[test]
    fn adversarial_always_true_comparator_is_safe() {
        // `less` that always answers true drives Hoare's upward scan past
        // the sentinel (every element "is less than" the pivot) and the
        // downward scan past index 0 — the exact OOB/underflow bug.
        for n in [2usize, 3, 25, 26, 100, 1_000] {
            check_permutes((0..n as u64).collect(), |_, _| true);
        }
    }

    #[test]
    fn adversarial_always_false_comparator_is_safe() {
        for n in [2usize, 3, 25, 100, 1_000] {
            check_permutes((0..n as u64).rev().collect(), |_, _| false);
        }
    }

    #[test]
    fn adversarial_random_comparator_is_safe() {
        // A pseudo-random predicate answers `less(a, b)` and `less(b, a)`
        // independently, violating strict-order consistency in both
        // directions across the partition scans.
        let mut state = 0xDEADBEEFu64;
        for trial in 0..20 {
            let v: Vec<u64> = (0..500).map(|i| (i * 7919 + trial) % 97).collect();
            check_permutes(v, |_, _| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 63) == 1
            });
        }
    }

    #[test]
    fn deep_adversarial_input_does_not_overflow_stack() {
        // Sorted input with median-of-3 is fine; a crafted bad case would
        // recurse deeply if we recursed on both sides. The smaller-side
        // recursion bounds depth regardless — exercise with sawtooth.
        let v: Vec<u64> = (0..200_000).map(|i| (i % 2) * 1_000_000 + i).collect();
        check_sorts(v);
    }
}
