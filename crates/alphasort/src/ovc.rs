//! Offset-value coding (OVC) — the merge technique the paper was evaluating.
//!
//! §4: "IBM's DFsort and (apparently) SyncSort use replacement selection in
//! conjunction with a technique called offset-value coding (OVC). We are
//! evaluating OVC. … For binary data, like the keys of the Datamation
//! benchmark, offset value coding will not beat AlphaSort's simpler
//! key-prefix sort." This module lets that claim be tested.
//!
//! The variant implemented codes every run head relative to the **last
//! emitted record** (the global base): `offset(h)` = length of the common
//! prefix of `h.key` and the base key. Because every head is ≥ the base,
//!
//! * `offset(x) > offset(y)`  ⇒  `x.key < y.key` (no byte compares at all),
//! * equal offsets compare bytes only from the offset onward.
//!
//! When a new base is emitted, other heads' offsets update for free when
//! they differ from the winner's old offset (`min` rule); only equal-offset
//! heads need byte inspection, done lazily. [`OvcMerger`] counts the key
//! bytes it actually examines so experiments can compare against
//! [`plain_merge_bytes`] — the same merge with whole-key comparisons.

use alphasort_dmgen::{Record, KEY_LEN};

/// Counters for comparison effort during a merge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeEffort {
    /// Head-to-head comparisons performed.
    pub compares: u64,
    /// Individual key bytes examined while comparing.
    pub key_bytes: u64,
}

/// K-way merge of sorted record slices using offset-value coding.
pub struct OvcMerger<'a> {
    runs: Vec<&'a [Record]>,
    pos: Vec<usize>,
    /// Common-prefix length of each head with the current base key.
    offset: Vec<usize>,
    base: Option<[u8; KEY_LEN]>,
    /// Effort counters.
    pub effort: MergeEffort,
}

impl<'a> OvcMerger<'a> {
    /// Start merging `runs` (each key-ascending).
    ///
    /// # Panics
    /// If `runs` is empty.
    pub fn new(runs: Vec<&'a [Record]>) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let pos = vec![0usize; runs.len()];
        let offset = vec![0usize; runs.len()];
        OvcMerger {
            runs,
            pos,
            offset,
            base: None,
            effort: MergeEffort::default(),
        }
    }

    #[inline]
    fn head(&self, r: usize) -> Option<&'a Record> {
        self.runs[r].get(self.pos[r])
    }

    /// Compare live heads `a` and `b` using their codes; returns true if
    /// `a`'s head is strictly smaller (ties break toward the lower run).
    fn head_less(&mut self, a: usize, b: usize) -> bool {
        self.effort.compares += 1;
        let (oa, ob) = (self.offset[a], self.offset[b]);
        if oa != ob {
            // Deeper agreement with the base means a smaller key.
            return oa > ob;
        }
        let ka = self.head(a).expect("live head").key;
        let kb = self.head(b).expect("live head").key;
        let mut i = oa;
        while i < KEY_LEN {
            self.effort.key_bytes += 2;
            if ka[i] != kb[i] {
                // The loser learns nothing reusable here (its code stays
                // relative to the base, which is unchanged), but the byte
                // scan was confined to the uncoded suffix.
                return ka[i] < kb[i];
            }
            i += 1;
        }
        a < b
    }

    /// Pop the next record in global key order, `None` when done.
    pub fn next_record(&mut self) -> Option<Record> {
        let k = self.runs.len();
        let mut winner: Option<usize> = None;
        for r in 0..k {
            if self.head(r).is_none() {
                continue;
            }
            winner = Some(match winner {
                None => r,
                Some(w) => {
                    if self.head_less(r, w) {
                        r
                    } else {
                        w
                    }
                }
            });
        }
        let w = winner?;
        let out = *self.head(w).expect("winner head");
        let w_off = self.offset[w];
        self.pos[w] += 1;

        // Re-code every other live head against the new base.
        for r in 0..k {
            if r == w || self.head(r).is_none() {
                continue;
            }
            let o = self.offset[r];
            if o != w_off {
                // lcp(h, new_base) = min(lcp(h, old_base), lcp(w, old_base)).
                self.offset[r] = o.min(w_off);
            } else {
                // Equal offsets: extend by scanning (lazy, but done here for
                // simplicity; bytes counted honestly).
                let hk = self.head(r).expect("live head").key;
                let mut i = o;
                while i < KEY_LEN {
                    self.effort.key_bytes += 1;
                    if hk[i] != out.key[i] {
                        break;
                    }
                    i += 1;
                }
                self.offset[r] = i;
            }
        }
        // The winner's successor codes against the record just emitted.
        if let Some(next) = self.head(w) {
            let mut i = 0;
            while i < KEY_LEN {
                self.effort.key_bytes += 1;
                if next.key[i] != out.key[i] {
                    break;
                }
                i += 1;
            }
            self.offset[w] = i;
        }
        self.base = Some(out.key);
        out.into()
    }
}

/// The same scan-based K-way merge with plain whole-key comparisons,
/// returning the output and the effort — the baseline OVC is judged against.
pub fn plain_merge_bytes(runs: Vec<&[Record]>) -> (Vec<Record>, MergeEffort) {
    assert!(!runs.is_empty());
    let mut pos = vec![0usize; runs.len()];
    let mut effort = MergeEffort::default();
    let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    loop {
        let mut winner: Option<usize> = None;
        for r in 0..runs.len() {
            if pos[r] >= runs[r].len() {
                continue;
            }
            winner = Some(match winner {
                None => r,
                Some(w) => {
                    effort.compares += 1;
                    let ka = &runs[r][pos[r]].key;
                    let kb = &runs[w][pos[w]].key;
                    let mut less = r < w; // tie → lower run
                    for i in 0..KEY_LEN {
                        effort.key_bytes += 2;
                        if ka[i] != kb[i] {
                            less = ka[i] < kb[i];
                            break;
                        }
                    }
                    if less {
                        r
                    } else {
                        w
                    }
                }
            });
        }
        match winner {
            None => break,
            Some(w) => {
                out.push(runs[w][pos[w]]);
                pos[w] += 1;
            }
        }
    }
    (out, effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution};

    fn sorted_runs(n: u64, per: usize, dist: KeyDistribution) -> Vec<Vec<Record>> {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 0x0FC,
            dist,
        });
        records_of(&data)
            .chunks(per)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_by_key(|a| a.key);
                v
            })
            .collect()
    }

    fn collect_ovc(runs: &[Vec<Record>]) -> (Vec<Record>, MergeEffort) {
        let mut m = OvcMerger::new(runs.iter().map(|r| r.as_slice()).collect());
        let mut out = Vec::new();
        while let Some(r) = m.next_record() {
            out.push(r);
        }
        (out, m.effort)
    }

    #[test]
    fn ovc_merge_is_correct() {
        let runs = sorted_runs(3_000, 400, KeyDistribution::Random);
        let (out, _) = collect_ovc(&runs);
        assert_eq!(out.len(), 3_000);
        assert!(out.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn ovc_matches_plain_merge_output() {
        for dist in [
            KeyDistribution::Random,
            KeyDistribution::DupHeavy { cardinality: 4 },
            KeyDistribution::CommonPrefix { shared: 6 },
            KeyDistribution::Sorted,
        ] {
            let runs = sorted_runs(1_200, 150, dist);
            let (ovc_out, _) = collect_ovc(&runs);
            let (plain_out, _) = plain_merge_bytes(runs.iter().map(|r| r.as_slice()).collect());
            let ka: Vec<_> = ovc_out.iter().map(|r| r.key).collect();
            let kb: Vec<_> = plain_out.iter().map(|r| r.key).collect();
            assert_eq!(ka, kb, "dist {dist:?}");
        }
    }

    #[test]
    fn ovc_saves_bytes_on_common_prefix_keys() {
        // Keys share 6 leading bytes: plain compares burn through them every
        // time; OVC codes them away.
        let runs = sorted_runs(4_000, 250, KeyDistribution::CommonPrefix { shared: 6 });
        let (_, ovc) = collect_ovc(&runs);
        let (_, plain) = plain_merge_bytes(runs.iter().map(|r| r.as_slice()).collect());
        assert!(
            ovc.key_bytes * 2 < plain.key_bytes,
            "ovc {} vs plain {}",
            ovc.key_bytes,
            plain.key_bytes
        );
    }

    #[test]
    fn paper_claim_random_binary_keys_gain_little() {
        // §4: "For binary data … offset value coding will not beat
        // AlphaSort's simpler key-prefix sort." With uniform random keys the
        // first byte usually differs, so savings should be modest per
        // compare (most compares already stop after ~1 byte).
        let runs = sorted_runs(4_000, 250, KeyDistribution::Random);
        let (_, ovc) = collect_ovc(&runs);
        let (_, plain) = plain_merge_bytes(runs.iter().map(|r| r.as_slice()).collect());
        let plain_per = plain.key_bytes as f64 / plain.compares as f64;
        // Random bytes: expected ~2.016 bytes per plain compare (pairs).
        assert!(plain_per < 3.0, "plain per-compare bytes {plain_per}");
        // OVC's *relative* advantage is therefore bounded on this data.
        assert!(ovc.key_bytes as f64 > plain.key_bytes as f64 * 0.1);
    }

    #[test]
    fn single_run_passthrough() {
        let runs = sorted_runs(100, 100, KeyDistribution::Random);
        let (out, effort) = collect_ovc(&runs);
        assert_eq!(out.len(), 100);
        assert_eq!(effort.compares, 0); // one live head, never compared
    }
}
