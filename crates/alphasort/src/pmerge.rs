//! Partition planning for the parallel merge.
//!
//! The tournament merge is a single thread — the scaling ceiling once the
//! sort pool and striped IO are wide. Splitter-based range partitioning
//! (Rahn/Sanders/Singler's distributed external sort uses the same recipe)
//! turns it into P embarrassingly parallel merges: sample keys from the
//! sorted runs, pick `P - 1` quantile splitters, and binary-search every
//! run for the splitter boundaries. Range `j` holds exactly the records
//! whose key routes to `j` under [`crate::splitter::route`] — a pure
//! function of the key — so equal keys never straddle ranges, and each
//! per-range merge can keep the run-index tie-break. Concatenating the
//! range outputs in order is therefore *byte-identical* to the serial
//! merge (the oracle tests in `tests/oracle.rs` hold the drivers to that).
//!
//! Planning is generic over a `key_at(run, pos)` probe so the same code
//! cuts in-memory [`SortedRun`]s (free probes) and scratch runs on striped
//! disks (each probe reads the stride holding the key).

use alphasort_dmgen::KEY_LEN;

use crate::runform::SortedRun;
use crate::splitter::splitters_from_keys;

/// Keys sampled per requested range when planning (the pool is
/// `ranges * SAMPLES_PER_RANGE`, spread over runs by record count).
pub const SAMPLES_PER_RANGE: usize = 32;

/// A partitioned-merge plan: P disjoint key ranges, each cutting every run.
#[derive(Clone, Debug)]
pub struct MergePartition {
    /// The `ranges - 1` quantile splitter keys, ascending.
    pub splitters: Vec<[u8; KEY_LEN]>,
    /// `bounds[j][r]` = record positions `[start, end)` of range `j`
    /// within sorted run `r`.
    pub bounds: Vec<Vec<(u64, u64)>>,
    /// Records each range holds (feeds the merge-skew stat).
    pub range_records: Vec<u64>,
}

impl MergePartition {
    /// Number of ranges planned.
    pub fn ranges(&self) -> usize {
        self.bounds.len()
    }
}

/// First position in sorted run `run` (length `len`) whose key is not
/// below `key` — the routing boundary, probed via `key_at`.
fn lower_bound<E>(
    run: usize,
    len: u64,
    key: &[u8; KEY_LEN],
    key_at: &mut impl FnMut(usize, u64) -> Result<[u8; KEY_LEN], E>,
) -> Result<u64, E> {
    let (mut lo, mut hi) = (0u64, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key_at(run, mid)? < *key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Plan `ranges` disjoint key ranges over sorted runs of the given
/// lengths, probing keys through `key_at(run, pos)` (`pos` in sorted
/// order). Duplicate splitters (dup-heavy keys) legitimately produce
/// empty ranges; the cover/disjointness invariants hold regardless.
pub fn plan_partitions_with<E>(
    run_lens: &[u64],
    ranges: usize,
    samples_per_range: usize,
    mut key_at: impl FnMut(usize, u64) -> Result<[u8; KEY_LEN], E>,
) -> Result<MergePartition, E> {
    assert!(ranges >= 1, "need at least one range");
    let total: u64 = run_lens.iter().sum();

    // ---- sample: every stride-th record across all runs -------------------
    // Runs are sampled proportionally to their length, so the pooled sample
    // approximates the global key distribution and its quantiles bound the
    // per-range record count (the skew bound in DESIGN.md).
    let mut pool = Vec::new();
    if total > 0 && ranges > 1 {
        let want = (ranges * samples_per_range.max(1)) as u64;
        let stride = (total / want).max(1);
        for (r, &len) in run_lens.iter().enumerate() {
            let mut pos = 0;
            while pos < len {
                pool.push(key_at(r, pos)?);
                pos += stride;
            }
        }
    }
    let splitters = splitters_from_keys(pool, ranges);

    // ---- cut every run at every splitter ----------------------------------
    // Range j = keys with exactly j splitters <= key, so the boundary
    // between ranges j-1 and j within a run is the count of records below
    // splitters[j-1] — a binary search per (run, splitter).
    let mut cuts: Vec<Vec<u64>> = Vec::with_capacity(ranges + 1);
    cuts.push(vec![0; run_lens.len()]);
    for s in &splitters {
        let mut row = Vec::with_capacity(run_lens.len());
        for (r, &len) in run_lens.iter().enumerate() {
            row.push(lower_bound(r, len, s, &mut key_at)?);
        }
        cuts.push(row);
    }
    cuts.push(run_lens.to_vec());

    let mut bounds = Vec::with_capacity(ranges);
    let mut range_records = Vec::with_capacity(ranges);
    for j in 0..ranges {
        let row: Vec<(u64, u64)> = cuts[j]
            .iter()
            .zip(&cuts[j + 1])
            .map(|(&s, &e)| (s, e))
            .collect();
        range_records.push(row.iter().map(|&(s, e)| e - s).sum());
        bounds.push(row);
    }
    Ok(MergePartition {
        splitters,
        bounds,
        range_records,
    })
}

/// A partitioned-merge plan over variable-length runs: splitters are
/// byte-string keys instead of fixed arrays, bounds and cover semantics
/// identical to [`MergePartition`].
#[derive(Clone, Debug)]
pub struct VarMergePartition {
    /// The `ranges - 1` quantile splitter keys, ascending byte strings.
    pub splitters: Vec<Vec<u8>>,
    /// `bounds[j][r]` = sorted positions `[start, end)` of range `j`
    /// within var-len run `r`.
    pub bounds: Vec<Vec<(u64, u64)>>,
    /// Records each range holds.
    pub range_records: Vec<u64>,
}

impl VarMergePartition {
    /// Number of ranges planned.
    pub fn ranges(&self) -> usize {
        self.bounds.len()
    }
}

/// [`lower_bound`] for byte-string keys.
fn var_lower_bound<E>(
    run: usize,
    len: u64,
    key: &[u8],
    key_at: &mut impl FnMut(usize, u64) -> Result<Vec<u8>, E>,
) -> Result<u64, E> {
    let (mut lo, mut hi) = (0u64, len);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if key_at(run, mid)?.as_slice() < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// [`plan_partitions_with`] for variable-length runs: same proportional
/// sampling, same quantile splitters (now byte strings via
/// [`crate::splitter::byte_splitters_from_keys`]), same per-(run, splitter)
/// binary search. Range `j` holds exactly the records
/// [`crate::splitter::route_bytes`] sends to `j`, so concatenated range
/// merges stay byte-identical to the serial merge.
pub fn plan_var_partitions_with<E>(
    run_lens: &[u64],
    ranges: usize,
    samples_per_range: usize,
    mut key_at: impl FnMut(usize, u64) -> Result<Vec<u8>, E>,
) -> Result<VarMergePartition, E> {
    assert!(ranges >= 1, "need at least one range");
    let total: u64 = run_lens.iter().sum();

    let mut pool = Vec::new();
    if total > 0 && ranges > 1 {
        let want = (ranges * samples_per_range.max(1)) as u64;
        let stride = (total / want).max(1);
        for (r, &len) in run_lens.iter().enumerate() {
            let mut pos = 0;
            while pos < len {
                pool.push(key_at(r, pos)?);
                pos += stride;
            }
        }
    }
    let splitters = crate::splitter::byte_splitters_from_keys(pool, ranges);

    let mut cuts: Vec<Vec<u64>> = Vec::with_capacity(ranges + 1);
    cuts.push(vec![0; run_lens.len()]);
    for s in &splitters {
        let mut row = Vec::with_capacity(run_lens.len());
        for (r, &len) in run_lens.iter().enumerate() {
            row.push(var_lower_bound(r, len, s, &mut key_at)?);
        }
        cuts.push(row);
    }
    cuts.push(run_lens.to_vec());

    let mut bounds = Vec::with_capacity(ranges);
    let mut range_records = Vec::with_capacity(ranges);
    for j in 0..ranges {
        let row: Vec<(u64, u64)> = cuts[j]
            .iter()
            .zip(&cuts[j + 1])
            .map(|(&s, &e)| (s, e))
            .collect();
        range_records.push(row.iter().map(|&(s, e)| e - s).sum());
        bounds.push(row);
    }
    Ok(VarMergePartition {
        splitters,
        bounds,
        range_records,
    })
}

/// Plan over in-memory [`crate::varlen::VarRun`]s: probes are free and
/// cannot fail.
pub fn plan_var_mem_partitions(
    runs: &[crate::varlen::VarRun],
    ranges: usize,
    samples_per_range: usize,
) -> VarMergePartition {
    let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
    let plan = plan_var_partitions_with(&lens, ranges, samples_per_range, |r, pos| {
        Ok::<_, std::convert::Infallible>(runs[r].key_at(pos as usize).to_vec())
    });
    match plan {
        Ok(p) => p,
        Err(e) => match e {},
    }
}

/// Plan over in-memory sorted runs (the one-pass driver's case): probes
/// are free `record_at` calls and cannot fail.
pub fn plan_mem_partitions(
    runs: &[SortedRun],
    ranges: usize,
    samples_per_range: usize,
) -> MergePartition {
    let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
    let plan = plan_partitions_with(&lens, ranges, samples_per_range, |r, pos| {
        Ok::<_, std::convert::Infallible>(runs[r].record_at(pos as usize).key)
    });
    match plan {
        Ok(p) => p,
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runform::{form_run, Representation};
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution, RECORD_LEN};

    fn runs_of(n: u64, per_run: usize, dist: KeyDistribution, seed: u64) -> Vec<SortedRun> {
        let (data, _) = generate(GenConfig {
            records: n,
            seed,
            dist,
        });
        data.chunks(per_run * RECORD_LEN)
            .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
            .collect()
    }

    /// Disjointness + exact cover: within every run the range bounds abut
    /// and concatenate to the whole run.
    fn assert_covering(plan: &MergePartition, lens: &[u64]) {
        for (r, &len) in lens.iter().enumerate() {
            let mut pos = 0;
            for row in &plan.bounds {
                let (s, e) = row[r];
                assert_eq!(s, pos, "gap/overlap in run {r}");
                assert!(s <= e);
                pos = e;
            }
            assert_eq!(pos, len, "run {r} not fully covered");
        }
        let total: u64 = lens.iter().sum();
        assert_eq!(plan.range_records.iter().sum::<u64>(), total);
    }

    #[test]
    fn plan_covers_random_runs() {
        let runs = runs_of(4_000, 333, KeyDistribution::Random, 7);
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        for ranges in [1, 2, 4, 8] {
            let plan = plan_mem_partitions(&runs, ranges, SAMPLES_PER_RANGE);
            assert_eq!(plan.ranges(), ranges);
            assert_eq!(plan.splitters.len(), ranges - 1);
            assert_covering(&plan, &lens);
        }
    }

    #[test]
    fn quantile_splitters_bound_the_skew() {
        let runs = runs_of(20_000, 1_000, KeyDistribution::Random, 11);
        let plan = plan_mem_partitions(&runs, 8, 64);
        let ideal = 20_000.0 / 8.0;
        for &n in &plan.range_records {
            assert!((n as f64) < ideal * 1.6, "range holds {n}");
        }
    }

    #[test]
    fn all_equal_keys_collapse_to_one_nonempty_range() {
        let runs = runs_of(900, 300, KeyDistribution::DupHeavy { cardinality: 1 }, 3);
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        let plan = plan_mem_partitions(&runs, 4, 16);
        assert_covering(&plan, &lens);
        // Duplicate splitters make every range but the last empty: equal
        // keys route right of every equal splitter.
        assert_eq!(plan.range_records[..3], [0, 0, 0]);
        assert_eq!(plan.range_records[3], 900);
    }

    #[test]
    fn empty_and_single_record_runs_are_cut_correctly() {
        let mut runs = runs_of(500, 100, KeyDistribution::Random, 21);
        runs.push(form_run(Vec::new(), Representation::KeyPrefix));
        let one = runs_of(1, 1, KeyDistribution::Random, 22).remove(0);
        runs.push(one);
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        let plan = plan_mem_partitions(&runs, 4, 16);
        assert_covering(&plan, &lens);
    }

    #[test]
    fn zero_runs_plan_is_empty_but_well_formed() {
        let plan = plan_mem_partitions(&[], 4, 16);
        assert_eq!(plan.ranges(), 4);
        assert!(plan.bounds.iter().all(Vec::is_empty));
        assert_eq!(plan.range_records, vec![0, 0, 0, 0]);
    }

    #[test]
    fn var_plan_covers_text_runs() {
        use crate::varlen::VarRun;
        use alphasort_dmgen::{generate_varlen, parse_var_record, TextCorpus, VarGenConfig};
        let buf = generate_varlen(VarGenConfig {
            records: 2_000,
            seed: 13,
            corpus: TextCorpus::Urls,
        });
        let mut runs = Vec::new();
        let mut cur = Vec::new();
        let (mut off, mut count) = (0usize, 0usize);
        while off < buf.len() {
            let r = parse_var_record(&buf[off..], off as u64).unwrap();
            cur.extend_from_slice(r.frame());
            off += r.len();
            count += 1;
            if count == 311 {
                runs.push(VarRun::from_frames(std::mem::take(&mut cur)).unwrap());
                count = 0;
            }
        }
        runs.push(VarRun::from_frames(cur).unwrap());
        let lens: Vec<u64> = runs.iter().map(|r| r.len() as u64).collect();
        for ranges in [1, 2, 4, 8] {
            let plan = plan_var_mem_partitions(&runs, ranges, SAMPLES_PER_RANGE);
            assert_eq!(plan.ranges(), ranges);
            assert_eq!(plan.splitters.len(), ranges - 1);
            // Same cover/disjointness invariant as the fixed-layout plan.
            for (r, &len) in lens.iter().enumerate() {
                let mut pos = 0;
                for row in &plan.bounds {
                    let (s, e) = row[r];
                    assert_eq!(s, pos, "gap/overlap in run {r}");
                    pos = e;
                }
                assert_eq!(pos, len, "run {r} not fully covered");
            }
            assert_eq!(
                plan.range_records.iter().sum::<u64>(),
                lens.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn probe_errors_propagate() {
        let err = plan_partitions_with(&[10, 10], 4, 8, |_, _| Err::<[u8; 10], _>("probe failed"));
        assert_eq!(err.unwrap_err(), "probe failed");
    }
}
