//! Plain host-file sources and sinks.
//!
//! The paper distinguishes "a program like AlphaSort, designed to sort
//! exactly the Datamation test data" from "an industrial-strength sort"
//! (their Daytona category). These adapters are the industrial face: the
//! same drivers run over ordinary files on the host file system, buffered
//! reads and writes, no simulation anywhere.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use alphasort_obs as obs;

use crate::io::{RecordSink, RecordSource};

/// Buffered sequential source over a host file.
pub struct FileSource {
    file: File,
    chunk: usize,
    remaining: Option<u64>,
}

impl FileSource {
    /// Default chunk size: 1 MB of whole records.
    pub const DEFAULT_CHUNK: usize = 10_000 * alphasort_dmgen::RECORD_LEN;

    /// Open `path` for sequential reading with the default chunk size.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Self::with_chunk(path, Self::DEFAULT_CHUNK)
    }

    /// Open `path`, delivering `chunk`-byte pieces.
    pub fn with_chunk<P: AsRef<Path>>(path: P, chunk: usize) -> io::Result<Self> {
        assert!(chunk > 0);
        let file = File::open(path)?;
        let remaining = file.metadata().ok().map(|m| m.len());
        Ok(FileSource {
            file,
            chunk,
            remaining,
        })
    }
}

impl RecordSource for FileSource {
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        let mut g = obs::span(obs::phase::FILE_READ);
        let mut buf = vec![0u8; self.chunk];
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.file.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        g.attr("bytes", filled as u64);
        obs::metrics::counter_add("file.read.bytes", filled as u64);
        if filled == 0 {
            return Ok(None);
        }
        buf.truncate(filled);
        Ok(Some(buf))
    }

    fn size_hint(&self) -> Option<u64> {
        self.remaining
    }
}

/// Buffered sequential sink over a host file.
pub struct FileSink {
    writer: Option<BufWriter<File>>,
    written: u64,
}

impl FileSink {
    /// Create (truncate) `path` for sequential writing.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(FileSink {
            writer: Some(BufWriter::with_capacity(1 << 20, file)),
            written: 0,
        })
    }
}

impl RecordSink for FileSink {
    fn push(&mut self, data: &[u8]) -> io::Result<()> {
        let _g = obs::span(obs::phase::FILE_WRITE).with("bytes", data.len() as u64);
        let Some(w) = self.writer.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "push on a file sink that was already completed",
            ));
        };
        w.write_all(data)?;
        self.written += data.len() as u64;
        obs::metrics::counter_add("file.write.bytes", data.len() as u64);
        Ok(())
    }

    fn complete(&mut self) -> io::Result<u64> {
        if let Some(mut w) = self.writer.take() {
            let _g = obs::span(obs::phase::FILE_WRITE).with("sync", 1u64);
            w.flush()?;
            w.into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
        }
        Ok(self.written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::one_pass;
    use crate::SortConfig;
    use alphasort_dmgen::{validate_reader, GenConfig, Generator, RECORD_LEN};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "alphasort-io-file-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_roundtrip_through_the_sort() {
        let dir = tmpdir();
        let input_path = dir.join("input.dat");
        let output_path = dir.join("output.dat");

        // Write the benchmark input to a real file.
        let mut gen = Generator::new(GenConfig::datamation(5_000, 77));
        {
            let mut sink = FileSink::create(&input_path).unwrap();
            let mut buf = vec![0u8; 500 * RECORD_LEN];
            loop {
                let n = gen.fill(&mut buf);
                if n == 0 {
                    break;
                }
                sink.push(&buf[..n]).unwrap();
            }
            assert_eq!(sink.complete().unwrap(), 5_000 * RECORD_LEN as u64);
        }

        // Sort file → file.
        let mut source = FileSource::with_chunk(&input_path, 777 * 100).unwrap();
        assert_eq!(source.size_hint(), Some(5_000 * RECORD_LEN as u64));
        let mut sink = FileSink::create(&output_path).unwrap();
        let cfg = SortConfig {
            run_records: 1_000,
            gather_batch: 300,
            workers: 2,
            ..Default::default()
        };
        let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
        assert_eq!(outcome.stats.records, 5_000);

        // Validate from disk.
        let mut f = std::fs::File::open(&output_path).unwrap();
        let report = validate_reader(&mut f, gen.checksum()).unwrap().unwrap();
        assert_eq!(report.records, 5_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_sorts_to_empty_file() {
        let dir = tmpdir();
        let input = dir.join("empty.dat");
        std::fs::write(&input, b"").unwrap();
        let mut source = FileSource::open(&input).unwrap();
        let mut sink = FileSink::create(dir.join("out.dat")).unwrap();
        let outcome = one_pass(&mut source, &mut sink, &SortConfig::default()).unwrap();
        assert_eq!(outcome.bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(FileSource::open("/nonexistent/alphasort/input").is_err());
    }
}
