//! Hot-path kernel registry: named variants of the two CPU hot loops.
//!
//! §4 and §7 of the paper spend most of their instruction-budget analysis
//! on run formation's QuickSort and the merge tournament. This module is
//! the `sortasm.c`-style registry of variants for those loops: every
//! kernel is selectable at runtime (`--kernel` on sortcli, the `kernel`
//! manifest field on sortd, [`crate::SortConfig::kernel`] everywhere
//! else), every kernel produces **byte-identical** output to the scalar
//! oracle, and the bench trajectory reports records/sec per kernel so a
//! variant that stops paying for itself is visible in CI.
//!
//! The registered variants:
//!
//! | kernel            | run formation                  | tree replay |
//! |-------------------|--------------------------------|-------------|
//! | `scalar`          | QuickSort (oracle baseline)    | branchy     |
//! | `branchless-tree` | QuickSort                      | cond-move   |
//! | `radix`           | 256-bucket prefix radix + QS   | branchy     |
//! | `simd`            | sorting-network base case      | branchy     |
//!
//! Each variant changes exactly one hot loop against the baseline, so an
//! end-to-end records/sec difference is attributable to that loop.
//!
//! * `radix` is the DPG key-prefix bucketing: one counting pass over the
//!   top prefix byte scatters entries into 256 buckets that are already in
//!   relative order, then each bucket QuickSorts with the scalar
//!   comparator. Bucketing is consistent with the total order, so the
//!   permutation is identical to the global QuickSort's.
//! * `simd` replaces QuickSort's insertion-sort base case with a Batcher
//!   odd-even merge network over packed `(prefix, idx)` words. The network
//!   is data-independent compare-exchange; with `--features simd` the
//!   exchanges run as struct-of-arrays u64 lane arithmetic in mask-select
//!   form (autovectorizable), without the feature the always-compiled
//!   scalar network runs. Both produce the same permutation.
//!
//! The run-formation variants apply to the `KeyPrefix` representation
//! (the paper's choice and the default); the other representations keep
//! the scalar QuickSort regardless of kernel.

use alphasort_dmgen::{records_of, Record};

use crate::entry::PrefixEntry;
use crate::kernel::{partition, quicksort_by};

/// A named hot-path kernel variant. `Scalar` is the correctness oracle;
/// every other variant must match it byte for byte (`tests/kernel_fuzz.rs`
/// and the driver oracle enforce this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// The existing scalar QuickSort + branchy loser tree (baseline).
    Scalar,
    /// Scalar QuickSort, but the merge tournament's `replay` uses
    /// conditional-move selects instead of a data-dependent branch.
    BranchlessTree,
    /// Top-byte radix bucketing before the in-cache QuickSort (DPG).
    Radix,
    /// Sorting-network base case for `(prefix, idx)` pairs; vectorized
    /// lane form behind `--features simd`, scalar network otherwise.
    Simd,
}

impl Kernel {
    /// Every registered kernel, oracle first.
    pub const ALL: [Kernel; 4] = [
        Kernel::Scalar,
        Kernel::BranchlessTree,
        Kernel::Radix,
        Kernel::Simd,
    ];

    /// Registry name (CLI flag value, manifest field value, bench key).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::BranchlessTree => "branchless-tree",
            Kernel::Radix => "radix",
            Kernel::Simd => "simd",
        }
    }

    /// Look a kernel up by its registry name.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The run-formation strategy this kernel selects.
    pub fn runform(self) -> RunFormKernel {
        match self {
            Kernel::Scalar | Kernel::BranchlessTree => RunFormKernel::Quicksort,
            Kernel::Radix => RunFormKernel::Radix,
            Kernel::Simd => RunFormKernel::Network,
        }
    }

    /// The loser-tree replay strategy this kernel selects.
    pub fn tree(self) -> TreeKernel {
        match self {
            Kernel::BranchlessTree => TreeKernel::Branchless,
            _ => TreeKernel::Branchy,
        }
    }

    /// Whether this kernel's network pass actually runs in the lane
    /// (vectorizable) form in this build. `simd` without the cargo feature
    /// still runs — on the scalar network — and still sorts identically.
    pub fn is_vectorized(self) -> bool {
        self == Kernel::Simd && cfg!(feature = "simd")
    }

    /// One-line description for help text and docs.
    pub fn describe(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar QuickSort + branchy loser tree (oracle baseline)",
            Kernel::BranchlessTree => "conditional-move loser-tree replay, scalar QuickSort",
            Kernel::Radix => "256-bucket key-prefix radix before the in-cache QuickSort",
            Kernel::Simd => "sorting-network base case (lane form with --features simd)",
        }
    }
}

/// How run formation sorts the `(prefix, idx)` entry array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunFormKernel {
    /// Median-of-three QuickSort with an insertion-sort finish.
    Quicksort,
    /// Top-byte counting scatter into 256 buckets, QuickSort per bucket.
    Radix,
    /// QuickSort recursion with a Batcher network base case.
    Network,
}

/// How the merge tournament replays the winner's root path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKernel {
    /// Branch on the comparison, swap when the parked loser wins.
    Branchy,
    /// Mask-select update: no data-dependent branch on the outcome.
    Branchless,
}

/// The scalar contract every run-formation kernel must reproduce: prefix
/// order, full-key order on prefix ties, arrival index last (which makes
/// the order total and the sorted permutation unique).
#[inline]
pub fn prefix_entry_less(records: &[Record], a: &PrefixEntry, b: &PrefixEntry) -> bool {
    if a.prefix != b.prefix {
        a.prefix < b.prefix
    } else {
        (&records[a.idx as usize].key, a.idx) < (&records[b.idx as usize].key, b.idx)
    }
}

/// DPG-style radix run formation: one counting pass over the top prefix
/// byte scatters the entries into 256 buckets, then each bucket QuickSorts
/// under the scalar comparator. The bucket key is the comparator's own
/// most-significant byte, so bucket order refines to exactly the scalar
/// permutation — byte-identical output with near-sequential scatter writes
/// and 256 much smaller (cache-resident) QuickSorts.
pub fn radix_prefix_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let entries = PrefixEntry::extract(records);
    let mut counts = [0usize; 256];
    for e in &entries {
        counts[(e.prefix >> 56) as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for b in 0..256 {
        starts[b] = acc;
        acc += counts[b];
    }
    let mut bucketed = vec![PrefixEntry { prefix: 0, idx: 0 }; entries.len()];
    let mut cursor = starts;
    for e in entries {
        let b = (e.prefix >> 56) as usize;
        bucketed[cursor[b]] = e;
        cursor[b] += 1;
    }
    for b in 0..256 {
        let (s, e) = (starts[b], starts[b] + counts[b]);
        if e - s > 1 {
            quicksort_by(&mut bucketed[s..e], |x, y| prefix_entry_less(records, x, y));
        }
    }
    bucketed.into_iter().map(|e| e.idx).collect()
}

/// Entries per sorting-network block (padded to this width with +∞).
const NET_BLOCK: usize = 16;

/// Pack an entry into one orderable word: prefix in the high 64+32 bits,
/// index in the low 32. Word order equals `(prefix, idx)` order, and
/// `u128::MAX` is strictly above every real entry (the high 32 bits of a
/// real packed word are zero), so it pads partial blocks safely. The
/// checked length contract in [`crate::entry`] keeps every real index
/// below `u32::MAX`.
#[inline]
fn pack(e: &PrefixEntry) -> u128 {
    ((e.prefix as u128) << 32) | e.idx as u128
}

/// Network run formation: QuickSort recursion down to `NET_BLOCK`-sized
/// blocks, each finished by a Batcher odd-even merge network on the packed
/// `(prefix, idx)` words, then a fix-up pass that re-sorts equal-prefix
/// spans under the full-key comparator (the network cannot see full keys,
/// so it orders ties by index; the fix-up restores the scalar contract).
pub fn network_prefix_order(buf: &[u8]) -> Vec<u32> {
    let records = records_of(buf);
    let entries = PrefixEntry::extract(records);
    let mut packed: Vec<u128> = entries.iter().map(pack).collect();
    network_quicksort(&mut packed);
    let mut order: Vec<u32> = packed.iter().map(|&p| p as u32).collect();
    // Fix-up: within each equal-prefix span the network's (prefix, idx)
    // order must become (prefix, full key, idx) order. Spans are rare on
    // random keys and the span bounds come straight off the packed words.
    let mut i = 0;
    while i < packed.len() {
        let pfx = packed[i] >> 32;
        let mut j = i + 1;
        while j < packed.len() && (packed[j] >> 32) == pfx {
            j += 1;
        }
        if j - i > 1 {
            quicksort_by(&mut order[i..j], |&a, &b| {
                (&records[a as usize].key, a) < (&records[b as usize].key, b)
            });
        }
        i = j;
    }
    order
}

/// Smaller-side-recursion QuickSort over packed words with the network as
/// base case (mirrors [`crate::kernel::quicksort_by`]'s shape).
fn network_quicksort(mut v: &mut [u128]) {
    loop {
        let n = v.len();
        if n <= NET_BLOCK {
            sort_block(v);
            return;
        }
        let p = partition(v, &mut |a: &u128, b: &u128| a < b);
        let (lo, hi) = v.split_at_mut(p);
        let hi = &mut hi[1..]; // pivot already placed
        if lo.len() < hi.len() {
            network_quicksort(lo);
            v = hi;
        } else {
            network_quicksort(hi);
            v = lo;
        }
    }
}

/// Sort up to [`NET_BLOCK`] words by padding to a full block with +∞ and
/// running the fixed network.
fn sort_block(v: &mut [u128]) {
    let n = v.len();
    if n < 2 {
        return;
    }
    let mut block = [u128::MAX; NET_BLOCK];
    block[..n].copy_from_slice(v);
    net16(&mut block);
    v.copy_from_slice(&block[..n]);
}

/// Visit Batcher's odd-even merge sort comparator pairs for a
/// [`NET_BLOCK`]-input network, in layer order. The pair sequence is
/// data-independent — the property that makes the exchanges branch-free
/// and lane-packable — and the 0-1 principle test below proves it sorts.
fn batcher_pairs(mut cex: impl FnMut(usize, usize)) {
    let n = NET_BLOCK;
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        cex(i + j, i + j + k);
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

/// One-word network: mask-select compare-exchange on `u128`s. Always
/// compiled — this is the `simd` kernel's guaranteed fallback.
#[cfg_attr(feature = "simd", allow(dead_code))]
fn net16_scalar(v: &mut [u128; NET_BLOCK]) {
    batcher_pairs(|a, b| {
        let (x, y) = (v[a], v[b]);
        let m = 0u128.wrapping_sub((y < x) as u128);
        v[a] = (y & m) | (x & !m);
        v[b] = (x & m) | (y & !m);
    });
}

/// Lane-form network: the block is split into two struct-of-arrays `u64`
/// halves (the packed word's high and low 64 bits; lexicographic order of
/// the halves equals word order) and every exchange is mask-select lane
/// arithmetic, the form the autovectorizer packs. Identical permutation to
/// [`net16_scalar`] — same network, same comparator.
#[cfg(feature = "simd")]
fn net16_lanes(v: &mut [u128; NET_BLOCK]) {
    let mut hi = [0u64; NET_BLOCK];
    let mut lo = [0u64; NET_BLOCK];
    for i in 0..NET_BLOCK {
        hi[i] = (v[i] >> 64) as u64;
        lo[i] = v[i] as u64;
    }
    batcher_pairs(|a, b| {
        let (ha, la, hb, lb) = (hi[a], lo[a], hi[b], lo[b]);
        let swap = (hb < ha) | ((hb == ha) & (lb < la));
        let m = (swap as u64).wrapping_neg();
        hi[a] = (hb & m) | (ha & !m);
        lo[a] = (lb & m) | (la & !m);
        hi[b] = (ha & m) | (hb & !m);
        lo[b] = (la & m) | (lb & !m);
    });
    for i in 0..NET_BLOCK {
        v[i] = ((hi[i] as u128) << 64) | lo[i] as u128;
    }
}

fn net16(v: &mut [u128; NET_BLOCK]) {
    #[cfg(feature = "simd")]
    {
        net16_lanes(v)
    }
    #[cfg(not(feature = "simd"))]
    {
        net16_scalar(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runform::key_prefix_order;
    use alphasort_dmgen::{generate, GenConfig, KeyDistribution};

    #[test]
    fn registry_names_round_trip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
            assert!(!k.describe().is_empty());
        }
        assert_eq!(Kernel::from_name("no-such-kernel"), None);
    }

    #[test]
    fn oracle_is_first_and_scalar() {
        assert_eq!(Kernel::ALL[0], Kernel::Scalar);
        assert_eq!(Kernel::Scalar.runform(), RunFormKernel::Quicksort);
        assert_eq!(Kernel::Scalar.tree(), TreeKernel::Branchy);
        assert_eq!(Kernel::BranchlessTree.tree(), TreeKernel::Branchless);
    }

    #[test]
    fn network_sorts_by_zero_one_principle() {
        // A data-independent comparator network sorts every input iff it
        // sorts every 0-1 input (Knuth 5.3.4). 2^16 cases is exhaustive
        // proof for the 16-input Batcher network.
        for bits in 0..(1u32 << NET_BLOCK) {
            let mut v = [0u128; NET_BLOCK];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = ((bits >> i) & 1) as u128;
            }
            net16_scalar(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "bits {bits:#06x}");
        }
    }

    #[test]
    fn network_sorts_random_words_and_partial_blocks() {
        let mut state = 0x5EEDu128;
        for n in 1..=NET_BLOCK {
            for _ in 0..50 {
                let mut v: Vec<u128> = (0..n)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
                        state
                    })
                    .collect();
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_block(&mut v);
                assert_eq!(v, expect, "block of {n}");
            }
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn lane_network_matches_scalar_network() {
        let mut state = 0xABCDu128;
        for _ in 0..500 {
            let mut a = [0u128; NET_BLOCK];
            for slot in a.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *slot = state;
            }
            let mut b = a;
            net16_scalar(&mut a);
            net16_lanes(&mut b);
            assert_eq!(a, b);
        }
    }

    fn dataset(n: u64, seed: u64, dist: KeyDistribution) -> Vec<u8> {
        generate(GenConfig {
            records: n,
            seed,
            dist,
        })
        .0
    }

    #[test]
    fn radix_and_network_orders_match_scalar_quicksort() {
        for dist in [
            KeyDistribution::Random,
            KeyDistribution::DupHeavy { cardinality: 3 },
            KeyDistribution::Sorted,
            KeyDistribution::Reverse,
            KeyDistribution::CommonPrefix { shared: 8 },
        ] {
            let data = dataset(2_500, 0x6B31, dist);
            let want = key_prefix_order(&data);
            assert_eq!(radix_prefix_order(&data), want, "radix on {dist:?}");
            assert_eq!(network_prefix_order(&data), want, "network on {dist:?}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(radix_prefix_order(&[]).is_empty());
        assert!(network_prefix_order(&[]).is_empty());
        let data = dataset(1, 7, KeyDistribution::Random);
        assert_eq!(radix_prefix_order(&data), vec![0]);
        assert_eq!(network_prefix_order(&data), vec![0]);
    }
}
