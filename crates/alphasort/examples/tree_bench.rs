use alphasort_core::merge::RunMerger;
use alphasort_core::runform::{form_run, Representation};
use alphasort_core::kernels::TreeKernel;
use alphasort_dmgen::{generate, GenConfig, RECORD_LEN};
use std::time::Instant;

fn main() {
    let (data, _) = generate(GenConfig::datamation(800_000, 3));
    let runs: Vec<_> = data
        .chunks(50_000 * RECORD_LEN)
        .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
        .collect();
    for kernel in [TreeKernel::Branchy, TreeKernel::Branchless] {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            let m = RunMerger::new_with_kernel(&runs, kernel);
            let mut n = 0u64;
            for _ in m { n += 1; }
            assert_eq!(n, 800_000);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!("{kernel:?}: {:.0} records/s (16-way merge)", 800_000.0 / best);
    }
}
