//! A minimal bench harness: named groups, per-benchmark timing with median
//! and min over a fixed sample count, optional bytes/s throughput.
//!
//! The criterion dependency could not survive the offline, std-only rule, so
//! the `benches/*.rs` targets (all `harness = false`) drive this instead.
//! Statistics are deliberately simple — each sample is one full closure call
//! timed with [`Instant`]; the report prints the median, the min and, when a
//! throughput is declared, MB/s at the median.

use std::hint::black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box as bb;

/// One named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct BenchGroup {
    name: String,
    samples: usize,
    bytes: Option<u64>,
}

impl BenchGroup {
    /// Start a group; the name prefixes every benchmark line.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        BenchGroup {
            name,
            samples: 10,
            bytes: None,
        }
    }

    /// Samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declare bytes processed per iteration, enabling MB/s in the report.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.bytes = Some(bytes);
        self
    }

    /// Run one benchmark: a warm-up call, then `samples` timed calls.
    pub fn bench<R>(&mut self, id: impl AsRef<str>, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up (page in data, fill caches)
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let rate = self
            .bytes
            .map(|b| format!(", {:7.1} MB/s", b as f64 / 1e6 / median.as_secs_f64()))
            .unwrap_or_default();
        println!(
            "{}/{:<40} median {:>10.3?}  min {:>10.3?}{}",
            self.name,
            id.as_ref(),
            median,
            min,
            rate
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure_samples_plus_warmup_times() {
        let mut calls = 0u32;
        let mut g = BenchGroup::new("t");
        g.sample_size(3).throughput_bytes(1);
        g.bench("count", || calls += 1);
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }
}
