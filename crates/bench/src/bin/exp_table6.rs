//! Table 6: the two disk arrays — many-slow (36 RZ26, 9 SCSI) vs few-fast
//! (12 RZ28 on fast SCSI + 6 IPI on Genroco). Stripe rates come from the
//! simulated arrays; prices and capacities from the catalog.

use alphasort_bench::{few_fast_array, many_slow_array, modeled_stripe_rates};
use alphasort_perfmodel::table::Table;

fn main() {
    println!("== Table 6: two different disk arrays ==\n");
    let slow = many_slow_array();
    let fast = few_fast_array();
    let (slow_r, slow_w) = modeled_stripe_rates(&slow, 100);
    let (fast_r, fast_w) = modeled_stripe_rates(&fast, 100);

    let mut t = Table::new([
        "",
        "many-slow RAID",
        "few-fast RAID",
        "paper (slow)",
        "paper (fast)",
    ]);
    t.row([
        "drives".to_string(),
        format!("{} RZ26", slow.width()),
        "12 RZ28 + 6 Velocitor".to_string(),
        "36 RZ26".to_string(),
        "12 RZ28 + 6 Velocitor".to_string(),
    ]);
    t.row([
        "controllers".to_string(),
        format!("{} SCSI", slow.controllers().len()),
        "4 SCSI + 3 IPI-Genroco".to_string(),
        "9 SCSI (kzmsa)".to_string(),
        "4 SCSI + 3 IPI-Genroco".to_string(),
    ]);
    t.row([
        "capacity".to_string(),
        format!("{:.0} GB", slow.capacity_gb()),
        format!("{:.0} GB", fast.capacity_gb()),
        "36 GB".to_string(),
        "36 GB".to_string(),
    ]);
    t.row([
        "stripe read rate".to_string(),
        format!("{slow_r:.0} MB/s"),
        format!("{fast_r:.0} MB/s"),
        "64 MB/s".to_string(),
        "52 MB/s".to_string(),
    ]);
    t.row([
        "stripe write rate".to_string(),
        format!("{slow_w:.0} MB/s"),
        format!("{fast_w:.0} MB/s"),
        "49 MB/s".to_string(),
        "39 MB/s".to_string(),
    ]);
    t.row([
        "list price".to_string(),
        format!("{:.0} k$", slow.price_dollars() / 1e3),
        format!("{:.0} k$", fast.price_dollars() / 1e3),
        "85 k$".to_string(),
        "122 k$".to_string(),
    ]);
    print!("{}", t.render());

    println!(
        "\nShape check: \"The many-slow array has slightly better performance\n\
         and price performance for the same storage capacity\" — modeled\n\
         {:.0} > {:.0} MB/s read at {:.0} < {:.0} k$.",
        slow_r,
        fast_r,
        slow.price_dollars() / 1e3,
        fast.price_dollars() / 1e3
    );
}
