//! Figure 3: "How far away is the data?" — the memory-hierarchy distance
//! scale, plus a live pointer-chase measurement of the host's hierarchy.

use std::time::Instant;

use alphasort_cachesim::latency::figure3;
use alphasort_perfmodel::table::Table;

/// Dependent-load pointer chase over a `size`-byte ring; returns ns/load.
fn pointer_chase_ns(size: usize) -> f64 {
    let n = size / 8;
    // Random cycle (Sattolo's algorithm) so the prefetcher can't help.
    let mut next: Vec<usize> = (0..n).collect();
    let mut s = 0x9E37_79B9u64;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (s >> 33) as usize % i;
        next.swap(i, j);
    }
    let iters = 4_000_000usize;
    let mut idx = 0usize;
    // Warm.
    for _ in 0..n {
        idx = next[idx];
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        idx = next[idx];
    }
    let dt = t0.elapsed();
    std::hint::black_box(idx);
    dt.as_nanos() as f64 / iters as f64
}

fn main() {
    println!("== Figure 3 (paper scale, 5 ns clock ticks) ==\n");
    let mut t = Table::new([
        "level",
        "clock ticks",
        "latency",
        "human analogy (1 tick = 1 min)",
    ]);
    for row in figure3() {
        let ns = row.nanoseconds();
        let lat = if ns >= 1e9 {
            format!("{:.0} s", ns / 1e9)
        } else if ns >= 1e3 {
            format!("{:.0} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        };
        t.row([
            row.level.to_string(),
            format!("{:.0}", row.clock_ticks),
            lat,
            row.analogy.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n== host pointer-chase (dependent loads, random cycle) ==\n");
    let mut h = Table::new(["working set", "ns/load"]);
    for kb in [4usize, 16, 64, 256, 1024, 4 * 1024, 32 * 1024, 128 * 1024] {
        let ns = pointer_chase_ns(kb * 1024);
        let label = if kb >= 1024 {
            format!("{} MB", kb / 1024)
        } else {
            format!("{kb} KB")
        };
        h.row([label, format!("{ns:.1}")]);
    }
    print!("{}", h.render());
    println!(
        "\nThe staircase in ns/load is the host's L1/L2/L3/DRAM hierarchy —\n\
         the same cliff structure Figure 3 dramatizes. The gap the paper\n\
         predicted would widen has: memory is further away in ticks today\n\
         than the 100 it was in 1993."
    );
}
