//! Service-level benchmark for the sortd daemon: a self-hosted client
//! fleet measuring throughput (jobs/s), submit-to-result latency (p50 and
//! p99), and pool utilization at its high-water mark.
//!
//! Usage: `exp_sortd [JOBS] [THREADS] [RECORDS] [--json OUT.json]`
//! (defaults: 200 jobs over 8 client threads, 5 000 records each, plus a
//! fixed pair of forced two-pass "elephant" jobs racing the fleet).
//!
//! Each job's output is checked byte-for-byte against a stable-sort
//! oracle, so the numbers only count *correct* sorts. The JSON snapshot
//! (`BENCH_PR6.json` at the repo root) records the service-level numbers
//! the way the other BENCH files record kernel numbers.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use alphasort_dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_minijson::Json;
use alphasort_sortd::{
    AdmissionConfig, Client, JobSpec, Kernel, PoolConfig, ScratchBacking, Sortd, SortdConfig,
};

fn oracle(mut data: Vec<u8>) -> Vec<u8> {
    records_of_mut(&mut data).sort_by_key(|r| r.key);
    data
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nums = args.iter().filter(|a| !a.starts_with("--"));
    let jobs: u64 = nums.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let threads: u64 = nums.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let records: u64 = nums.next().and_then(|s| s.parse().ok()).unwrap_or(5_000);
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    const ELEPHANTS: u64 = 2;
    let pool = PoolConfig {
        mem_total: 8 << 20,
        scratch_total: 256 << 20,
    };
    let daemon = Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool,
        admission: AdmissionConfig {
            queue_bound: 1024,
            bypass_limit: 16,
        },
        backing: ScratchBacking::Memory,
        client_read_timeout: Duration::from_secs(300),
        ..SortdConfig::default()
    })
    .expect("daemon starts");
    let addr = daemon.addr();

    println!(
        "== sortd service benchmark: {jobs} x {records}-record jobs over {threads} client \
         threads, {ELEPHANTS} forced two-pass elephants, pool {} MB mem ==\n",
        pool.mem_total >> 20
    );

    let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
    let queued_count = Arc::new(Mutex::new(0u64));
    let started = Instant::now();
    let mut handles = Vec::new();

    // Elephants: 20 MB of input against a 2 MB budget, racing the fleet.
    for e in 0..ELEPHANTS {
        let lat = Arc::clone(&latencies);
        let qc = Arc::clone(&queued_count);
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(200_000, 9_000 + e));
            let spec = JobSpec {
                name: format!("elephant-{e}"),
                input_bytes: data.len() as u64,
                mem_budget: 2 << 20,
                scratch_budget: data.len() as u64 + RECORD_LEN as u64,
                merge_workers: 0,
                kernel: Kernel::Scalar,
                ..JobSpec::default()
            };
            let client = Client::new(addr).with_timeout(Duration::from_secs(300));
            let t0 = Instant::now();
            let res = client.submit(&spec, &data).expect("elephant failed");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(res.output, oracle(data), "elephant-{e} wrong");
            lat.lock().unwrap().push(dt);
            if res.queued {
                *qc.lock().unwrap() += 1;
            }
        }));
    }
    for t in 0..threads {
        let lat = Arc::clone(&latencies);
        let qc = Arc::clone(&queued_count);
        handles.push(thread::spawn(move || {
            let client = Client::new(addr).with_timeout(Duration::from_secs(300));
            for j in (t..jobs).step_by(threads.max(1) as usize) {
                let (data, _) = generate(GenConfig::datamation(records, 10_000 + j));
                let spec = JobSpec {
                    name: format!("fleet-{j}"),
                    input_bytes: data.len() as u64,
                    mem_budget: 1 << 20,
                    scratch_budget: data.len() as u64 + RECORD_LEN as u64,
                    merge_workers: 0,
                    kernel: Kernel::Scalar,
                    ..JobSpec::default()
                };
                let t0 = Instant::now();
                let mut delay = Duration::from_millis(2);
                let res = loop {
                    match client.submit(&spec, &data) {
                        Ok(r) => break r,
                        Err(e) if e.retryable() => {
                            thread::sleep(delay);
                            delay = (delay * 2).min(Duration::from_millis(100));
                        }
                        Err(e) => panic!("fleet-{j}: {e}"),
                    }
                };
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(res.output, oracle(data), "fleet-{j} wrong");
                lat.lock().unwrap().push(dt);
                if res.queued {
                    *qc.lock().unwrap() += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let wall = started.elapsed().as_secs_f64();

    let (total_done, failed_queued) = daemon.drain();
    assert_eq!(failed_queued, 0);
    assert!(daemon.pool_idle(), "pool accounting not zero after drain");

    let stats = daemon.stats();
    let pool_doc = stats.get("pool").unwrap();
    let queue_doc = stats.get("queue").unwrap();
    let mem_hwm = pool_doc.field_u64("mem_hwm").unwrap();
    let scratch_hwm = pool_doc.field_u64("scratch_hwm").unwrap();
    let bypasses = queue_doc.field_u64("bypasses").unwrap();
    let aged = queue_doc.field_u64("aged_barriers").unwrap();

    let mut lats = latencies.lock().unwrap().clone();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_jobs = jobs + ELEPHANTS;
    let jobs_per_sec = total_jobs as f64 / wall;
    let p50 = percentile(&lats, 0.50);
    let p99 = percentile(&lats, 0.99);
    let mem_util = mem_hwm as f64 / pool.mem_total as f64;
    let queued = *queued_count.lock().unwrap();

    println!("jobs completed        {total_done} (all oracle-checked)");
    println!("wall clock            {wall:.3} s");
    println!("throughput            {jobs_per_sec:.1} jobs/s");
    println!("latency p50           {:.1} ms", p50 * 1e3);
    println!("latency p99           {:.1} ms", p99 * 1e3);
    println!(
        "pool mem hwm          {:.2} MB of {} MB ({:.0}% utilized)",
        mem_hwm as f64 / 1e6,
        pool.mem_total >> 20,
        mem_util * 100.0
    );
    println!("pool scratch hwm      {:.1} MB", scratch_hwm as f64 / 1e6);
    println!("jobs that queued      {queued}");
    println!("backfill bypasses     {bypasses} (aged into barriers: {aged})");

    if let Some(path) = json_out {
        let doc = Json::Obj(vec![
            ("benchmark".into(), Json::from("sortd service fleet")),
            ("jobs".into(), Json::from(total_jobs)),
            ("client_threads".into(), Json::from(threads)),
            ("records_per_small_job".into(), Json::from(records)),
            ("elephant_jobs".into(), Json::from(ELEPHANTS)),
            ("pool_mem_bytes".into(), Json::from(pool.mem_total)),
            ("pool_scratch_bytes".into(), Json::from(pool.scratch_total)),
            ("wall_seconds".into(), Json::from(wall)),
            ("jobs_per_sec".into(), Json::from(jobs_per_sec)),
            ("latency_p50_ms".into(), Json::from(p50 * 1e3)),
            ("latency_p99_ms".into(), Json::from(p99 * 1e3)),
            ("pool_mem_hwm_bytes".into(), Json::from(mem_hwm)),
            ("pool_mem_utilization".into(), Json::from(mem_util)),
            ("pool_scratch_hwm_bytes".into(), Json::from(scratch_hwm)),
            ("jobs_queued".into(), Json::from(queued)),
            ("admission_bypasses".into(), Json::from(bypasses)),
            ("admission_aged_barriers".into(), Json::from(aged)),
            ("all_outputs_oracle_checked".into(), Json::Bool(true)),
            ("pool_idle_after_drain".into(), Json::Bool(true)),
        ]);
        std::fs::write(&path, doc.dump_pretty()).expect("write json");
        println!("\nwrote {path}");
    }
}
