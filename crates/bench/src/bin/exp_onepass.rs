//! §6 economics: one-pass vs two-pass — buy memory or buy scratch disks?
//! Sweeps sort size, prints both costs, finds the crossover, and backs the
//! dollars with an actual one-pass vs two-pass run of the same data.

use std::time::Instant;

use alphasort_core::driver::{one_pass, two_pass, MemScratch};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::mergeplan::{level_order_cost, optimal_schedule};
use alphasort_core::planner::{PassPlan, Planner};
use alphasort_core::rs::generate_runs;
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, validate_records, GenConfig, RECORD_LEN};
use alphasort_perfmodel::economics::{crossover_bytes, pass_economics};
use alphasort_perfmodel::table::{dollars, Table};

fn main() {
    println!("== §6: price of one-pass memory vs two-pass scratch disks ==\n");
    let mut t = Table::new([
        "sort size",
        "memory (1-pass)",
        "scratch disks (2-pass)",
        "cheaper",
    ]);
    for mb in [10u64, 50, 100, 250, 500, 750, 1_000, 2_500, 10_000] {
        let e = pass_economics(mb * 1_000_000);
        t.row([
            if mb >= 1000 {
                format!("{:.1} GB", mb as f64 / 1000.0)
            } else {
                format!("{mb} MB")
            },
            dollars(e.memory_cost),
            format!("{} ({} disks)", dollars(e.scratch_cost), e.scratch_disks),
            if e.one_pass_wins() {
                "one-pass".to_string()
            } else {
                "two-pass".to_string()
            },
        ]);
    }
    print!("{}", t.render());
    println!(
        "\ncrossover: {:.0} MB (paper: one-pass for the 100 MB benchmark,\n\
         two-pass for \"multi-gigabyte sorts\", ~15% cheaper at 1 GB)\n",
        crossover_bytes() as f64 / 1e6
    );

    println!("== planner behaviour ==\n");
    let p = Planner::new(256 << 20); // the DEC 7000's 256 MB
    for mb in [100u64, 500] {
        println!(
            "  {} MB input with a 256 MB machine → {:?}",
            mb,
            p.plan(mb * 1_000_000)
        );
    }
    assert_eq!(p.plan(100_000_000), PassPlan::OnePass);

    println!("\n== the bandwidth cost: same data, one pass vs two ==\n");
    let records = 500_000u64;
    let (data, cs) = generate(GenConfig::datamation(records, 2));
    let cfg = SortConfig {
        run_records: 100_000,
        gather_batch: 10_000,
        workers: 2,
        ..Default::default()
    };

    let t0 = Instant::now();
    let mut src = MemSource::new(data.clone(), 1_000_000);
    let mut sink = MemSink::new();
    let one = one_pass(&mut src, &mut sink, &cfg).unwrap();
    let one_s = t0.elapsed().as_secs_f64();
    validate_records(sink.data(), cs).unwrap();

    let t0 = Instant::now();
    let mut src = MemSource::new(data, 1_000_000);
    let mut sink = MemSink::new();
    let mut scratch = MemScratch::new(10_000 * RECORD_LEN);
    let two = two_pass(&mut src, &mut sink, &mut scratch, &cfg).unwrap();
    let two_s = t0.elapsed().as_secs_f64();
    validate_records(sink.data(), cs).unwrap();

    let mut t2 = Table::new(["driver", "elapsed s", "data moved", "spill time s"]);
    t2.row([
        "one-pass".to_string(),
        format!("{one_s:.3}"),
        format!("{} MB (in + out)", records * 200 / 1_000_000),
        format!("{:.3}", one.stats.spill_time.as_secs_f64()),
    ]);
    t2.row([
        "two-pass".to_string(),
        format!("{two_s:.3}"),
        format!(
            "{} MB (in + runs out + runs in + out)",
            records * 400 / 1_000_000
        ),
        format!("{:.3}", two.stats.spill_time.as_secs_f64()),
    ]);
    print!("{}", t2.render());
    println!(
        "\n\"A two-pass sort requires twice the disk bandwidth to carry the\n\
         runs being stored on disk and being read back in during merge phase.\"\n"
    );

    println!("== cascade scheduling for unequal runs (Knuth's optimal merge) ==\n");
    // Replacement-selection produces unequal runs (~2x memory, high
    // variance); compare the driver's level-order cascade against the
    // Huffman-optimal schedule at small fan-in.
    let (d, _) = generate(GenConfig::datamation(60_000, 77));
    let rs_runs = generate_runs(alphasort_dmgen::records_of(&d), 2_000);
    let lengths: Vec<u64> = rs_runs.iter().map(|r| r.len() as u64).collect();
    let mut t3 = Table::new(["fan-in", "level-order moved", "optimal moved", "saving"]);
    for fanin in [2usize, 3, 4, 8] {
        let lvl = level_order_cost(&lengths, fanin);
        let opt = optimal_schedule(&lengths, fanin).total_cost;
        t3.row([
            fanin.to_string(),
            format!("{lvl} rec"),
            format!("{opt} rec"),
            format!("{:.1}%", (1.0 - opt as f64 / lvl as f64) * 100.0),
        ]);
    }
    print!("{}", t3.render());
    println!(
        "\n{} replacement-selection runs (min {}, max {} records): the wider\n\
         the fan-in, the less scheduling matters — at the one-pass regime the\n\
         paper runs in, it never does.",
        lengths.len(),
        lengths.iter().min().unwrap(),
        lengths.iter().max().unwrap()
    );
}
