//! §8 MinuteSort: how much can you sort in a minute?
//!
//! Three readings: the paper's 1993 result, the analytic model of the same
//! 3-cpu 36-disk DEC 7000, and a host-measured point (in-memory sorts grown
//! until a scaled budget is exceeded, then extrapolated to a minute).

use std::time::Instant;

use alphasort_bench::host_sort;
use alphasort_core::SortConfig;
use alphasort_dmgen::RECORD_LEN;
use alphasort_perfmodel::machines::minutesort_machine;
use alphasort_perfmodel::metrics::minutesort;
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::Table;

fn main() {
    let budget: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6.0);
    let m = minutesort_machine();

    println!("== MinuteSort (§8) ==\n");

    // Model: how many MB fit in 60 s on the paper's machine?
    let mut mb = 100.0f64;
    while datamation_model(&m, mb).total() < 60.0 {
        mb += 10.0;
    }
    let modeled = minutesort(m.system_price, (mb * 1e6) as u64);

    // Host: grow until the (scaled) budget busts, extrapolate to a minute.
    let workers = std::thread::available_parallelism()
        .map(|n| (n.get() - 1).min(4))
        .unwrap_or(0);
    let cfg = SortConfig {
        run_records: 250_000,
        workers,
        gather_batch: 20_000,
        ..Default::default()
    };
    let mut records = 250_000u64;
    let mut best_rate = 0.0f64; // bytes per second
    loop {
        let t0 = Instant::now();
        let st = host_sort(records, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(st.records, records);
        best_rate = best_rate.max(records as f64 * RECORD_LEN as f64 / dt);
        if dt > budget || records > 64_000_000 {
            break;
        }
        records *= 2;
    }
    let host_minute_bytes = best_rate * 60.0;
    let host = minutesort(m.system_price, host_minute_bytes as u64);
    let paper = minutesort(m.system_price, 1_080_000_000);

    let mut t = Table::new(["entry", "GB/minute", "minute cost", "$/GB"]);
    t.row([
        "paper (DEC 7000, 3 cpu, 36 disks, 1993)".to_string(),
        format!("{:.2}", paper.sorted_gb),
        format!("{:.2}$", paper.minute_cost),
        format!("{:.2}$", paper.dollars_per_gb),
    ]);
    t.row([
        "analytic model of the same machine".to_string(),
        format!("{:.2}", modeled.sorted_gb),
        format!("{:.2}$", modeled.minute_cost),
        format!("{:.2}$", modeled.dollars_per_gb),
    ]);
    t.row([
        format!("host, extrapolated from a {budget:.0}-s budget"),
        format!("{:.2}", host.sorted_gb),
        format!("{:.2}$ (at 1993 price)", host.minute_cost),
        format!("{:.2}$", host.dollars_per_gb),
    ]);
    print!("{}", t.render());
    println!(
        "\npaper: \"A three-processor DEC 7000 AXP sorted 1.08 GB in a minute …\n\
         the 1.1 GB MinuteSort would cost 51 cents … 0.47$/GB.\""
    );
}
