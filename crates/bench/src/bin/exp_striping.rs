//! §6 / Figure 5: striping bandwidth scaling.
//!
//! * the single-disk "one-minute barrier" for a 100 MB sort,
//! * near-linear read/write scaling with stripe width (modeled RZ26 array,
//!   4 per SCSI controller — the paper scaled to 9 controllers, 36 disks,
//!   64 MB/s),
//! * controller saturation when too many fast disks share one bus.

use alphasort_bench::{modeled_array, modeled_stripe_rates};
use alphasort_iosim::catalog;
use alphasort_perfmodel::table::Table;

fn main() {
    println!("== one-disk one-minute barrier (§6) ==\n");
    let d = catalog::scsi_1993();
    let read_s = 100.0 / d.read_mbps;
    let write_s = 100.0 / d.write_mbps;
    println!(
        "one {} disk: read 100 MB in {:.0} s + write in {:.0} s ≈ {:.0} s total\n\
         (paper: \"about 25 seconds to read … about 30 seconds to write\")\n",
        d.name,
        read_s,
        write_s,
        read_s + write_s
    );

    println!("== stripe width sweep (modeled RZ26, 4 per SCSI controller) ==\n");
    let mut t = Table::new([
        "disks",
        "ctlrs",
        "read MB/s",
        "write MB/s",
        "ideal read",
        "efficiency",
    ]);
    for width in [1usize, 2, 4, 8, 12, 16, 24, 36] {
        let array = modeled_array(catalog::rz26(), catalog::scsi_controller(), 4, width);
        let (r, w) = modeled_stripe_rates(&array, (width * 2).max(8));
        let ideal = catalog::rz26().read_mbps * width as f64;
        t.row([
            width.to_string(),
            array.controllers().len().to_string(),
            format!("{r:.1}"),
            format!("{w:.1}"),
            format!("{ideal:.1}"),
            format!("{:.0}%", r / ideal * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\npaper anchor points: 8-wide ≈ 27 MB/s read / 22 MB/s write;\n\
         36-wide ≈ 64 MB/s read / 49 MB/s write. \"The file striping code\n\
         bandwidth is near-linear as the array grows.\"\n"
    );

    println!("== controller saturation (RZ28 on one 8 MB/s SCSI bus) ==\n");
    let mut t2 = Table::new(["disks on one bus", "sum of disk rates", "read MB/s"]);
    for n in [1usize, 2, 3, 4, 6, 8] {
        let array = modeled_array(catalog::rz28(), catalog::scsi_controller(), 8, n);
        let (r, _) = modeled_stripe_rates(&array, (n * 4).max(8));
        t2.row([
            n.to_string(),
            format!("{:.0}", catalog::rz28().read_mbps * n as f64),
            format!("{r:.1}"),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "\n\"Bottlenecks appear when a controller saturates; but with enough\n\
         controllers, the bus, memory, and OS handle the IO load.\""
    );
}
