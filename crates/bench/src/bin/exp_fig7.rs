//! Figure 7: where the time goes in the 9-second uniprocessor sort.
//!
//! Two views: the paper's hardware-monitor pie (reference constants), and
//! a reconstruction from this reproduction — the analytic phase model for
//! elapsed-time components plus the trace-driven cache simulator for the
//! processor-stall split.

use alphasort_cachesim::{
    traced_gather, traced_quicksort, CycleModel, Hierarchy, QuickSortVariant,
};
use alphasort_perfmodel::machines::table8;
use alphasort_perfmodel::phase::{datamation_model, figure7_paper};
use alphasort_perfmodel::table::Table;

fn main() {
    println!("== Figure 7 (paper's hardware monitor, DEC 10000/7000 AXP) ==\n");
    let mut t = Table::new(["component", "fraction"]);
    for s in figure7_paper() {
        t.row([
            s.component.to_string(),
            format!("{:.0}%", s.fraction * 100.0),
        ]);
    }
    print!("{}", t.render());

    println!("\n== reconstruction: elapsed-time phases (analytic model) ==\n");
    let m = &table8()[2]; // the 1-cpu DEC 7000 of the §7 walk-through
    let b = datamation_model(m, 100.0);
    let mut t2 = Table::new(["phase", "seconds", "share"]);
    let total = b.total();
    for (label, secs) in [
        ("startup (load, opens, creates)", b.startup),
        ("read ∥ quicksort", b.read_phase),
        ("last-run sort", b.last_run_sort),
        ("write ∥ merge+gather", b.write_phase),
        ("shutdown (closes, return)", b.shutdown),
    ] {
        t2.row([
            label.to_string(),
            format!("{secs:.2}"),
            format!("{:.0}%", secs / total * 100.0),
        ]);
    }
    t2.row([
        "total".to_string(),
        format!("{total:.2}"),
        "100%".to_string(),
    ]);
    print!("{}", t2.render());

    println!("\n== reconstruction: processor stall split (cache simulator) ==\n");
    // Trace the two CPU-heavy kernels of the sort at 1/10 scale and apply
    // the cycle model to split issue vs stall.
    let n = 100_000;
    let mut mem = Hierarchy::alpha_axp();
    traced_quicksort(n, 7, QuickSortVariant::KeyPrefix, &mut mem);
    traced_gather(n, 7, &mut mem);
    let stats = mem.stats();
    // Issue weight per data access from the paper's instruction mix: loads
    // + stores are 27% of instructions, so each access carries ~2.7
    // companions; at the measured dual-issue rate (>40% of instructions
    // dual-issued) that is ~2.6 issue cycles per access.
    let cm = CycleModel {
        issue: 2.6,
        ..CycleModel::default()
    };
    let cycles = cm.cycles(&stats);
    let issue = stats.accesses as f64 * cm.issue / cycles;
    let d_to_b = stats.d_misses.saturating_sub(stats.b_misses) as f64 * cm.d_miss / cycles;
    let b_to_mem = stats.b_misses as f64 * cm.b_miss / cycles;
    let tlb = stats.tlb_misses as f64 * cm.tlb_miss / cycles;

    let mut t3 = Table::new(["component", "modeled", "paper"]);
    t3.row([
        "issuing".to_string(),
        format!("{:.0}%", issue * 100.0),
        "29%".to_string(),
    ]);
    t3.row([
        "D-stream stall, D-to-B".to_string(),
        format!("{:.0}%", d_to_b * 100.0),
        "12%".to_string(),
    ]);
    t3.row([
        "D-stream stall, B-to-memory".to_string(),
        format!("{:.0}%", b_to_mem * 100.0),
        "44%".to_string(),
    ]);
    t3.row([
        "TLB fill (PAL)".to_string(),
        format!("{:.0}%", tlb * 100.0),
        "~9% PAL".to_string(),
    ]);
    print!("{}", t3.render());
    println!(
        "\nShape check: \"Even though AlphaSort spends GREAT effort on efficient\n\
         use of cache, the processor spends most of its time waiting for\n\
         memory\" — the modeled stall fraction is {:.0}%.",
        (1.0 - issue) * 100.0
    );
}
