//! §7: the 9.11-second uniprocessor walk-through, reconstructed as a
//! timeline from the analytic model.

use alphasort_perfmodel::machines::table8;
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::Table;

fn main() {
    let m = &table8()[2]; // DEC 7000 AXP, 1 × 5 ns cpu, 16 drives
    let b = datamation_model(m, 100.0);

    println!("== §7 walk-through: {} ==\n", m.name);
    let mut t = Table::new(["t (s)", "event"]);
    let mut clock = 0.0f64;
    let at = |t: &mut Table, clock: &mut f64, dt: f64, event: &str| {
        t.row([format!("{:>6.2}", *clock), event.to_string()]);
        *clock += dt;
    };
    at(
        &mut t,
        &mut clock,
        0.14,
        "launch; open stripe descriptor and input stripes",
    );
    at(
        &mut t,
        &mut clock,
        b.startup - 0.14,
        "create striped output file; extend address space 110 MB",
    );
    at(
        &mut t,
        &mut clock,
        b.read_phase,
        &format!(
            "read 100 MB at {:.1} MB/s; QuickSort runs as they fill ({})",
            m.read_mbps,
            if b.read_io_bound {
                "disk bound"
            } else {
                "cpu bound"
            }
        ),
    );
    at(
        &mut t,
        &mut clock,
        b.last_run_sort,
        "input done; sort the last 100,000-record run (no IO active)",
    );
    at(
        &mut t,
        &mut clock,
        b.write_phase,
        &format!(
            "tournament merge + gather; write 100 MB at {:.1} MB/s ({})",
            m.write_mbps,
            if b.write_io_bound {
                "disk bound"
            } else {
                "cpu bound"
            }
        ),
    );
    at(
        &mut t,
        &mut clock,
        b.shutdown,
        "close 17+17 files; return to shell",
    );
    t.row([format!("{clock:>6.2}"), "done".to_string()]);
    print!("{}", t.render());

    println!("\npaper timeline: reads done at 3.87 s (+0.12 s last-run sort);");
    println!("write phase 4.9 s; 8.8 s sort + 0.3 s launch/return = 9.11 s total.");
    println!(
        "model: read phase {:.2} s, write phase {:.2} s, total {:.2} s.",
        b.read_phase,
        b.write_phase,
        b.total()
    );
    println!(
        "\ncpu accounting (model): quicksort {:.1} s, merge+gather {:.1} s of\n\
         cpu time — the paper reports 6.0 s of memory-to-memory sort cpu and\n\
         1.9 s of OpenVMS time within 7.9 s total cpu.",
        b.sort_cpu, b.merge_gather_cpu
    );
}
