//! Table 1 / Graph 2: published Datamation results 1985–1993, plus this
//! reproduction's own points (host wall-clock, and the modeled 1993 DEC
//! 7000 from the analytic model).

use alphasort_bench::host_sort;
use alphasort_core::SortConfig;
use alphasort_perfmodel::chart::LogChart;
use alphasort_perfmodel::history::table1;
use alphasort_perfmodel::machines::table8;
use alphasort_perfmodel::metrics::datamation_dollars_per_sort;
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::{dollars, secs, Table};

fn main() {
    println!("== Table 1: time and cost to sort one million 100-byte records ==\n");
    let mut t = Table::new([
        "system", "year", "time(s)", "$/sort", "cost M$", "cpus", "disks",
    ]);
    for r in table1() {
        t.row([
            r.system.to_string(),
            r.year.to_string(),
            secs(r.time_s),
            dollars(r.dollars_per_sort),
            format!("{:.1}", r.cost_millions),
            r.cpus.to_string(),
            r.disks.to_string(),
        ]);
    }
    // Our reproduction's points.
    let workers = std::thread::available_parallelism()
        .map(|n| (n.get() - 1).min(3))
        .unwrap_or(0);
    let st = host_sort(
        1_000_000,
        &SortConfig {
            run_records: 100_000,
            workers,
            gather_batch: 10_000,
            ..Default::default()
        },
    );
    t.row([
        "this reproduction (host, in-memory)".to_string(),
        "now".to_string(),
        secs(st.elapsed.as_secs_f64()),
        "-".to_string(),
        "-".to_string(),
        (workers + 1).to_string(),
        "0".to_string(),
    ]);
    for m in table8().iter().filter(|m| m.cpus == 1 || m.cpus == 3) {
        let b = datamation_model(m, 100.0);
        t.row([
            format!("this reproduction (model, {})", m.name),
            "1993".to_string(),
            secs(b.total()),
            dollars(datamation_dollars_per_sort(m.system_price, b.total())),
            format!("{:.1}", m.system_price / 1e6),
            m.cpus.to_string(),
            "-".to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n== Graph 2 series (chronological) ==\n");
    let mut g = Table::new(["year", "system", "time(s)", "$/sort"]);
    for r in table1() {
        g.row([
            r.year.to_string(),
            r.system.to_string(),
            secs(r.time_s),
            dollars(r.dollars_per_sort),
        ]);
    }
    print!("{}", g.render());

    println!("\n== Graph 2, rendered (o = seconds, $ = $/sort x1000) ==\n");
    let mut chart = LogChart::new("log scale", 14);
    for r in table1() {
        chart.point(r.year.to_string(), r.time_s, 'o');
        chart.point(r.year.to_string(), r.dollars_per_sort * 1000.0, '$');
    }
    print!("{}", chart.render());

    println!(
        "\nShape check: time falls ~400:1 over the decade and AlphaSort holds\n\
         both records; the Cray was fastest-before-AlphaSort but ~100x more\n\
         expensive per sort."
    );
}
