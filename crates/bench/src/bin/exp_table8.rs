//! Table 8: the 100 MB Datamation benchmark on five Alpha AXP
//! configurations — modeled elapsed time and $/sort vs the paper's
//! published numbers, plus a real scaled run on the simulated array for
//! the walk-through machine.

use std::sync::Arc;

use alphasort_core::driver::one_pass;
use alphasort_core::io::{StripeSink, StripeSource};
use alphasort_core::SortConfig;
use alphasort_dmgen::{GenConfig, Generator, RECORD_LEN};
use alphasort_iosim::{catalog, BackendKind, DiskArrayBuilder, IoEngine, Pacing};
use alphasort_perfmodel::machines::table8;
use alphasort_perfmodel::metrics::datamation_dollars_per_sort;
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::{secs, Table};
use alphasort_stripefs::{StripedWriter, Volume};

fn main() {
    println!("== Table 8: 100 MB Datamation on Alpha AXP systems (modeled) ==\n");
    let mut t = Table::new([
        "system",
        "cpus",
        "drives",
        "model time(s)",
        "paper time(s)",
        "model $/sort",
        "paper $/sort",
    ]);
    for m in table8() {
        let b = datamation_model(&m, 100.0);
        let d = datamation_dollars_per_sort(m.system_price, b.total());
        t.row([
            m.name.clone(),
            m.cpus.to_string(),
            m.drives.clone(),
            secs(b.total()),
            secs(m.paper_time_s),
            format!("{d:.3}$"),
            format!("{:.3}$", m.paper_dollars_per_sort),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nOrdering check: the 3-cpu DEC 7000 is fastest, the DEC 3000 is the\n\
         price-performance leader — same ranking as the paper.\n"
    );

    // One end-to-end run on the simulated 16-disk array of the §7
    // walk-through, full size.
    println!("== disk-to-disk run on the simulated 16-disk array (modeled time) ==\n");
    let records = 1_000_000u64;
    let bytes = records * RECORD_LEN as u64;
    let array = {
        let mut b = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory);
        for _ in 0..4 {
            b = b.controller(catalog::fast_scsi_controller(), catalog::rz28(), 4);
        }
        b.build().expect("array")
    };
    let engine = Arc::new(IoEngine::new(array.disks().to_vec()));
    let volume = Volume::new(Arc::clone(&engine));
    let input = Arc::new(volume.create_across_all("input", 64 * 1024, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 8));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 10_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).expect("load");
    }
    w.finish().expect("load");
    array.reset_stats();

    let output = Arc::new(volume.create_across_all("output", 64 * 1024, bytes));
    let cfg = SortConfig {
        run_records: 100_000,
        workers: 2,
        gather_batch: 10_000,
        ..Default::default()
    };
    let mut source = StripeSource::new(Arc::clone(&input));
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = one_pass(&mut source, &mut sink, &cfg).expect("sort");
    let io = array.stats();
    println!(
        "sorted {} records; host wall {:.2} s; modeled 1993 IO elapsed {:.1} s\n\
         ({:.1} MB/s aggregate over {} RZ28 drives)",
        outcome.stats.records,
        outcome.stats.elapsed.as_secs_f64(),
        io.modeled_elapsed().as_secs_f64(),
        io.modeled_bandwidth_mbps(),
        array.width()
    );
}
