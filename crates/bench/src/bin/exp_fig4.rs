//! Figure 4: the replacement-selection tournament thrashes the cache; the
//! QuickSort of (key-prefix, pointer) pairs is cache resident. Plus the §4
//! clustering ablation ("reduces cache misses by a factor of two or three")
//! and the §4 claim that QuickSort is ~2.5× faster than the best tournament
//! sort (measured in wall-clock on the host).

use std::time::Instant;

use alphasort_cachesim::{
    traced_quicksort, traced_tournament_sort, Hierarchy, QuickSortVariant, TournamentLayout,
};
use alphasort_core::rs::generate_runs;
use alphasort_core::runform::key_prefix_order;
use alphasort_dmgen::{generate, records_of, GenConfig};
use alphasort_perfmodel::table::Table;

fn main() {
    let n = 200_000usize;
    let w = 65_536usize;

    println!("== Figure 4: cache misses, tournament vs QuickSort ({n} records) ==\n");
    let mut t = Table::new(["kernel", "D-miss/rec", "B-miss/rec", "TLB/rec"]);

    let mut rows = Vec::new();
    // Replacement-selection over records — the OpenVMS-sort approach of
    // Figure 4's left side — naive and clustered tree layouts, with and
    // without the record traffic (tree-only isolates the clustering claim).
    for layout in [TournamentLayout::Naive, TournamentLayout::Clustered] {
        for record_traffic in [true, false] {
            let mut mem = Hierarchy::alpha_axp();
            let r = traced_tournament_sort(n, w, 1, layout, record_traffic, &mut mem);
            let label = format!(
                "tournament/{}{}",
                layout.name(),
                if record_traffic { "" } else { " (tree only)" }
            );
            rows.push((label, record_traffic, r));
        }
    }
    // AlphaSort's run formation: key-prefix QuickSort of one 100,000-record
    // run — the unit Figure 4's right side depicts as cache resident (the
    // 1.6 MB entry array fits the 4 MB B-cache outright).
    {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_quicksort(100_000, 1, QuickSortVariant::KeyPrefix, &mut mem);
        rows.push(("quicksort/key-prefix (one run)".to_string(), true, r));
    }
    for (label, _, r) in &rows {
        t.row([
            label.clone(),
            format!("{:.2}", r.d_misses_per_elem()),
            format!("{:.3}", r.b_misses_per_elem()),
            format!("{:.3}", r.tlb_misses_per_elem()),
        ]);
    }
    print!("{}", t.render());

    let naive_full = rows[0].2.d_misses_per_elem();
    let naive_tree = rows[1].2.d_misses_per_elem();
    let clus_tree = rows[3].2.d_misses_per_elem();
    let quick = rows[4].2.d_misses_per_elem();
    println!(
        "\nclustering gain (tree only): {:.2}x fewer D-misses \
         (paper: \"a factor of two or three\")",
        naive_tree / clus_tree
    );
    println!(
        "quicksort run formation vs tournament-over-records: {:.1}x fewer \
         D-misses (Figure 4's contrast)",
        naive_full / quick
    );

    println!("\n== §4 wall-clock: QuickSort vs replacement-selection run formation ==\n");
    let records_n = 400_000u64;
    let (data, _) = generate(GenConfig::datamation(records_n, 3));
    let recs = records_of(&data).to_vec();

    let t0 = Instant::now();
    let order = key_prefix_order(&data);
    let quick_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(order);

    let t0 = Instant::now();
    let runs = generate_runs(&recs, 100_000);
    let rs_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(&runs);

    let mut t2 = Table::new(["run formation", "seconds", "runs", "notes"]);
    t2.row([
        "quicksort (key-prefix)".to_string(),
        format!("{quick_s:.3}"),
        "1".to_string(),
        "one in-memory run".to_string(),
    ]);
    t2.row([
        "replacement-selection".to_string(),
        format!("{rs_s:.3}"),
        runs.len().to_string(),
        "runs ≈ 2× memory".to_string(),
    ]);
    print!("{}", t2.render());
    println!(
        "\nspeed ratio: {:.1}:1 in QuickSort's favour \
         (paper observed 2.5:1; Knuth computed 2:1)",
        rs_s / quick_s
    );
}
