//! The shared-nothing baseline vs AlphaSort (§2 / §9).
//!
//! The pre-AlphaSort record was a partitioned-data design (DeWitt et al.'s
//! Hypercube, 58 s with 32 cpus and 32 disks); AlphaSort beat it 8:1 on a
//! shared-memory machine. This experiment runs both *algorithms* on the
//! same host over the same data: the AlphaSort pipeline vs the
//! partition-scatter-sort design with probabilistic splitting, plus the
//! splitting-balance diagnostics DeWitt's paper is about.

use std::time::Instant;

use alphasort_core::baseline::{partition_merge_sort, partition_sort, PartitionSortConfig};
use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, validate_records, GenConfig, KeyDistribution};
use alphasort_perfmodel::table::Table;

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let (input, cs) = generate(GenConfig::datamation(records, 32));

    println!("== AlphaSort vs partitioned parallel sort ({records} records, host) ==\n");
    let mut t = Table::new(["algorithm", "elapsed s", "notes"]);

    // AlphaSort pipeline.
    let t0 = Instant::now();
    let mut source = MemSource::new(input.clone(), 1_000_000);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        run_records: 100_000,
        workers: 3,
        gather_batch: 10_000,
        ..Default::default()
    };
    let outcome = one_pass(&mut source, &mut sink, &cfg).unwrap();
    let alpha_s = t0.elapsed().as_secs_f64();
    validate_records(sink.data(), cs).unwrap();
    t.row([
        "AlphaSort (shared memory)".to_string(),
        format!("{alpha_s:.3}"),
        format!("{} runs, merge+gather", outcome.stats.runs),
    ]);

    // Partitioned designs at several node counts.
    for nodes in [4usize, 8, 16, 32] {
        let pcfg = PartitionSortConfig {
            nodes,
            samples_per_node: 256,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (out, stats) = partition_sort(&input, &pcfg);
        let part_s = t0.elapsed().as_secs_f64();
        validate_records(&out, cs).unwrap();
        t.row([
            format!("partition-sort, {nodes} nodes"),
            format!("{part_s:.3}"),
            format!("skew {:.2}", stats.skew()),
        ]);
    }
    {
        let pcfg = PartitionSortConfig {
            nodes: 8,
            samples_per_node: 256,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (out, _) = partition_merge_sort(&input, &pcfg);
        let s = t0.elapsed().as_secs_f64();
        validate_records(&out, cs).unwrap();
        t.row([
            "partition-merge (DeWitt form), 8 nodes".to_string(),
            format!("{s:.3}"),
            "readers pre-sort, targets merge".to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\n== probabilistic splitting balance (8 nodes) ==\n");
    let mut b = Table::new(["samples/node", "skew (max/ideal)"]);
    for samples in [4usize, 16, 64, 256, 1024] {
        let pcfg = PartitionSortConfig {
            nodes: 8,
            samples_per_node: samples,
            ..Default::default()
        };
        let (_, stats) = partition_sort(&input, &pcfg);
        b.row([samples.to_string(), format!("{:.3}", stats.skew())]);
    }
    print!("{}", b.render());

    println!("\n== splitting under skewed keys ==\n");
    let (skewed, _) = generate(GenConfig {
        records: records / 4,
        seed: 33,
        dist: KeyDistribution::DupHeavy { cardinality: 3 },
    });
    let (_, stats) = partition_sort(
        &skewed,
        &PartitionSortConfig {
            nodes: 8,
            samples_per_node: 256,
            ..Default::default()
        },
    );
    println!(
        "3 distinct keys over 8 nodes: skew {:.1} — sampling cannot split what\n\
         doesn't vary; AlphaSort's single-address-space merge has no such\n\
         failure mode (its shared memory is the \"interconnect\").",
        stats.skew()
    );
    println!(
        "\npaper context: the Hypercube's 58 s vs AlphaSort's 7 s was 8:1 with\n\
         comparable hardware budgets; on one host the gap compresses (no real\n\
         network), but the balance sensitivity above is the structural cost\n\
         the partitioned design pays."
    );
}
