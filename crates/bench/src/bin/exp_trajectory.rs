//! The perf-trajectory driver (ROADMAP item 4): one canonical set of
//! kernel + service workloads, one JSON snapshot per PR, one gate.
//!
//! Usage: `exp_trajectory [--json OUT.json] [--records N] [--jobs N]
//! [--repeat N]` (defaults: 400 000-record kernel runs, 120-job service
//! fleet, best-of-5 kernel timing).
//!
//! Kernel rates are **best-of-N** (`--repeat`): each kernel runs N times
//! and the snapshot keeps the fastest. On a shared/noisy box the slow
//! runs measure the neighbor, not the sort — best-of converges to the
//! machine's actual speed, which is what a trajectory should track. The
//! service fleet runs once (its wall clock is 120 jobs wide and
//! self-averaging).
//!
//! Three kernel shapes cover the hot paths the repo has grown so far —
//! the serial one-pass sort, the forced two-pass spill, and the
//! partitioned parallel merge (4 ranges, 4 workers) — plus the sortd
//! service fleet whose latency quantiles come from the *daemon's* own
//! histograms over the `metrics` channel, not client-side stopwatches.
//! Every output is oracle- or fingerprint-checked; a wrong sort never
//! produces a number.
//!
//! PR 8 adds a **kernel registry** group: the same one-pass workload under
//! every registered hot-path kernel variant (scalar, branchless-tree,
//! radix, simd), each tracked as `kernel_<name>_records_per_sec` so a
//! regression in any variant — not just the default — trips the gate.
//!
//! PR 9 adds a **restart recovery** probe: the time from `Sortd::start`
//! over a journal populated with 200 job records (replay included) to a
//! probe job admitted and completed, tracked as
//! `service_restart_recovery_ms` (lower is better) so journal replay can
//! never silently turn into a boot-time cliff.
//!
//! PR 10 adds a **string merge** group: the LCP/OVC-aware tournament merge
//! against naive full-key comparison on the shared-megaprefix corpus,
//! tracked as `string_{ovc,naive}_records_per_sec` plus the deterministic
//! `string_ovc_key_bytes_saved_pct` (how many key bytes OVC never touches).
//!
//! The emitted document ends with a `tracked` section. Most entries are
//! higher-is-better rates; the exceptions (daemon e2e p99 latency) are
//! declared in the sibling `tracked_meta` object as `lower_is_better`,
//! which `benchdiff` honors when gating. That section is the trajectory
//! contract: `benchdiff OLD NEW` compares only `tracked` and fails CI
//! past 10% regression, so the other fields can grow freely without
//! becoming accidental gates.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use alphasort_core::driver::{one_pass, two_pass, MemScratch};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::stats::SortStats;
use alphasort_core::varlen::{MergeMode, VarRun, VarRunMerger};
use alphasort_core::{Kernel, SortConfig};
use alphasort_dmgen::{
    generate, generate_varlen, records_of_mut, validate_records, var_records_of, GenConfig,
    TextCorpus, VarGenConfig, RECORD_LEN,
};
use alphasort_minijson::Json;
use alphasort_obs::MetricsSnapshot;
use alphasort_sortd::{
    AdmissionConfig, Client, JobSpec, Journal, JournalRecord, PoolConfig, ScratchBacking,
    Sortd, SortdConfig,
};

fn kernel_doc(name: &str, st: &SortStats, elapsed_s: f64) -> (f64, Json) {
    let bytes = st.records * RECORD_LEN as u64;
    let rps = st.records as f64 / elapsed_s;
    let doc = Json::Obj(vec![
        ("records".into(), Json::from(st.records)),
        ("bytes".into(), Json::from(bytes)),
        ("elapsed_s".into(), Json::Float(elapsed_s)),
        ("records_per_sec".into(), Json::Float(rps)),
        (
            "mb_per_sec".into(),
            Json::Float(bytes as f64 / 1e6 / elapsed_s),
        ),
        (
            "phases_s".into(),
            Json::Obj(vec![
                ("read_wait".into(), Json::Float(st.read_wait.as_secs_f64())),
                ("sort".into(), Json::Float(st.sort_time.as_secs_f64())),
                ("merge".into(), Json::Float(st.merge_time.as_secs_f64())),
                ("gather".into(), Json::Float(st.gather_time.as_secs_f64())),
                ("write_wait".into(), Json::Float(st.write_wait.as_secs_f64())),
                ("spill".into(), Json::Float(st.spill_time.as_secs_f64())),
            ]),
        ),
    ]);
    println!(
        "  {name:<8} {:>9.0} records/s  ({:.1} MB/s, {:.3} s)",
        rps,
        bytes as f64 / 1e6 / elapsed_s,
        elapsed_s
    );
    (rps, doc)
}

/// Run `run` `repeat` times and report the fastest attempt (highest
/// records/sec). Slow attempts on a contended box measure the neighbor,
/// not the kernel.
fn best_of(
    repeat: usize,
    name: &str,
    mut run: impl FnMut() -> (SortStats, f64),
) -> (f64, Json) {
    let mut best: Option<(SortStats, f64)> = None;
    for _ in 0..repeat.max(1) {
        let (st, elapsed_s) = run();
        let faster = best
            .as_ref()
            .map(|(b_st, b_s)| st.records as f64 / elapsed_s > b_st.records as f64 / *b_s)
            .unwrap_or(true);
        if faster {
            best = Some((st, elapsed_s));
        }
    }
    let (st, elapsed_s) = best.expect("at least one attempt ran");
    kernel_doc(name, &st, elapsed_s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_out = flag("--json");
    let records: u64 = flag("--records").and_then(|s| s.parse().ok()).unwrap_or(400_000);
    let jobs: u64 = flag("--jobs").and_then(|s| s.parse().ok()).unwrap_or(120);
    let repeat: usize = flag("--repeat").and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("== perf trajectory: canonical kernel + service workloads ==\n");
    let (data, cs) = generate(GenConfig::datamation(records, 7));

    // Kernel 1: the serial one-pass sort (the paper's core loop).
    println!("kernel ({records} records, best of {repeat}):");
    let cfg = SortConfig {
        run_records: 100_000,
        gather_batch: 10_000,
        ..Default::default()
    };
    let (onepass_rps, onepass_doc) = best_of(repeat, "onepass", || {
        let t0 = Instant::now();
        let mut src = MemSource::new(data.clone(), 1 << 20);
        let mut sink = MemSink::new();
        let one = one_pass(&mut src, &mut sink, &cfg).expect("one-pass sorts");
        let elapsed_s = t0.elapsed().as_secs_f64();
        validate_records(sink.data(), cs).expect("one-pass output validates");
        (one.stats, elapsed_s)
    });

    // Kernel 2: the forced two-pass spill through memory scratch.
    let (twopass_rps, twopass_doc) = best_of(repeat, "twopass", || {
        let t0 = Instant::now();
        let mut src = MemSource::new(data.clone(), 1 << 20);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(10_000 * RECORD_LEN);
        let two = two_pass(&mut src, &mut sink, &mut scratch, &cfg).expect("two-pass sorts");
        let elapsed_s = t0.elapsed().as_secs_f64();
        validate_records(sink.data(), cs).expect("two-pass output validates");
        (two.stats, elapsed_s)
    });

    // Kernel 3: the partitioned parallel merge (PR 5) — 4 key ranges,
    // 4 sort/gather workers, same data, byte-identical output.
    let pcfg = SortConfig {
        workers: 4,
        merge_workers: 4,
        ..cfg
    };
    let (pmerge_rps, pmerge_doc) = best_of(repeat, "pmerge4", || {
        let t0 = Instant::now();
        let mut src = MemSource::new(data.clone(), 1 << 20);
        let mut sink = MemSink::new();
        let pm = one_pass(&mut src, &mut sink, &pcfg).expect("partitioned merge sorts");
        let elapsed_s = t0.elapsed().as_secs_f64();
        validate_records(sink.data(), cs).expect("partitioned-merge output validates");
        (pm.stats, elapsed_s)
    });

    // Kernel registry (PR 8): the serial one-pass workload under every
    // registered hot-path variant. All four must produce validating
    // output; each lands its own tracked rate so a slow kernel cannot
    // hide behind the default.
    println!("\nkernel registry ({records} records, best of {repeat}):");
    let mut kernel_variants: Vec<(String, f64, Json)> = Vec::new();
    for kernel in Kernel::ALL {
        let kcfg = SortConfig {
            run_records: 100_000,
            gather_batch: 10_000,
            kernel,
            ..Default::default()
        };
        let (rps, doc) = best_of(repeat, kernel.name(), || {
            let t0 = Instant::now();
            let mut src = MemSource::new(data.clone(), 1 << 20);
            let mut sink = MemSink::new();
            let run = one_pass(&mut src, &mut sink, &kcfg).expect("kernel variant sorts");
            let elapsed_s = t0.elapsed().as_secs_f64();
            validate_records(sink.data(), cs).expect("kernel variant output validates");
            (run.stats, elapsed_s)
        });
        kernel_variants.push((kernel.name().replace('-', "_"), rps, doc));
    }
    drop(data);

    // String sort (PR 10): the LCP/OVC-aware tournament merge against
    // naive full-key comparison on the adversarial shared-megaprefix
    // corpus (48 identical leading bytes per key). Wall-clock rates are
    // best-of; the key-bytes-examined counters are deterministic, so the
    // "OVC beats naive" claim is machine-noise-proof.
    let string_records = (records / 4).max(20_000);
    let sdata = generate_varlen(VarGenConfig {
        records: string_records,
        seed: 10,
        corpus: TextCorpus::SharedMegaPrefix {
            prefix: 48,
            suffix: 8,
        },
    });
    let srecs = var_records_of(&sdata).expect("string corpus parses");
    let per = srecs.len().div_ceil(8);
    let string_runs: Vec<VarRun> = srecs
        .chunks(per)
        .map(|c| {
            let mut buf = Vec::new();
            for r in c {
                buf.extend_from_slice(r.frame());
            }
            VarRun::from_frames(buf).expect("string run forms")
        })
        .collect();
    drop(srecs);

    // Untimed correctness pass: both modes must emit the identical
    // pointer sequence, in key order. A wrong merge never gets a number.
    {
        let a: Vec<_> = VarRunMerger::new(string_runs.iter().collect(), MergeMode::Ovc)
            .map(|p| (p.run, p.pos))
            .collect();
        let b: Vec<_> = VarRunMerger::new(string_runs.iter().collect(), MergeMode::Naive)
            .map(|p| (p.run, p.pos))
            .collect();
        assert_eq!(a, b, "OVC and naive merges diverged");
        assert_eq!(a.len() as u64, string_records);
        let mut prev: &[u8] = b"";
        for &(run, pos) in &a {
            let key = string_runs[run as usize].key_at(pos as usize);
            assert!(prev <= key, "string merge output out of order");
            prev = key;
        }
    }

    println!(
        "\nstring merge ({string_records} shared-megaprefix records, {} runs, best of {repeat}):",
        string_runs.len()
    );
    let mut string_modes: Vec<(&str, f64, u64, u64)> = Vec::new();
    for (mode, name) in [(MergeMode::Ovc, "ovc"), (MergeMode::Naive, "naive")] {
        let mut best_rps = 0.0f64;
        let mut effort = (0u64, 0u64);
        for _ in 0..repeat.max(1) {
            let refs: Vec<&VarRun> = string_runs.iter().collect();
            let t0 = Instant::now();
            let mut m = VarRunMerger::new(refs, mode);
            let mut n = 0u64;
            for p in &mut m {
                std::hint::black_box(p);
                n += 1;
            }
            let elapsed_s = t0.elapsed().as_secs_f64();
            assert_eq!(n, string_records);
            best_rps = best_rps.max(n as f64 / elapsed_s);
            effort = (m.effort.key_bytes, m.effort.compares);
        }
        println!(
            "  {name:<8} {best_rps:>9.0} records/s  ({} key bytes, {} compares)",
            effort.0, effort.1
        );
        string_modes.push((name, best_rps, effort.0, effort.1));
    }
    let (ovc_rps, ovc_bytes) = (string_modes[0].1, string_modes[0].2);
    let (naive_rps, naive_bytes) = (string_modes[1].1, string_modes[1].2);
    assert!(
        ovc_bytes * 2 < naive_bytes,
        "OVC must examine far fewer key bytes than naive on shared prefixes \
         ({ovc_bytes} vs {naive_bytes})"
    );
    let string_saved_pct = 100.0 * (1.0 - ovc_bytes as f64 / naive_bytes as f64);
    println!("  ovc examines {string_saved_pct:.1}% fewer key bytes than naive");
    drop(string_runs);

    // Service: an in-process sortd under a contended pool; throughput is
    // client-side wall clock, latency quantiles are daemon-reported.
    const THREADS: u64 = 8;
    const JOB_RECORDS: u64 = 3_000;
    println!("\nservice ({jobs} x {JOB_RECORDS}-record jobs, {THREADS} client threads):");
    let pool = PoolConfig {
        mem_total: 4 << 20,
        scratch_total: 64 << 20,
    };
    let daemon = Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool,
        admission: AdmissionConfig {
            queue_bound: 1024,
            bypass_limit: 16,
        },
        backing: ScratchBacking::Memory,
        client_read_timeout: Duration::from_secs(300),
        ..SortdConfig::default()
    })
    .expect("daemon starts");
    let addr = daemon.addr();
    let client_lat_ms = Arc::new(Mutex::new(Vec::<f64>::new()));
    let wall = Instant::now();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let lat = Arc::clone(&client_lat_ms);
        handles.push(thread::spawn(move || {
            let client = Client::new(addr).with_timeout(Duration::from_secs(300));
            for j in (t..jobs).step_by(THREADS as usize) {
                let (mut data, _) = generate(GenConfig::datamation(JOB_RECORDS, 11_000 + j));
                let spec = JobSpec {
                    name: format!("traj-{j}"),
                    input_bytes: data.len() as u64,
                    mem_budget: 1 << 20,
                    scratch_budget: 0,
                    merge_workers: 0,
                    kernel: Kernel::Scalar,
                    ..JobSpec::default()
                };
                let t0 = Instant::now();
                let res = client.submit(&spec, &data).expect("submit succeeds");
                lat.lock().unwrap().push(t0.elapsed().as_secs_f64() * 1e3);
                records_of_mut(&mut data).sort_by_key(|r| r.key);
                assert_eq!(res.output, data, "traj-{j} diverged from oracle");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let jobs_per_sec = jobs as f64 / wall_s;

    // Daemon-side quantiles over the metrics wire channel, before drain
    // closes the listener.
    let wire = Client::new(addr).metrics().expect("metrics request answers");
    let snap = MetricsSnapshot::from_json(&wire).expect("metrics doc decodes");
    let q = |name: &str, p: f64| {
        snap.histograms
            .get(name)
            .and_then(|h| h.quantile(p))
            .unwrap_or(0.0)
    };
    daemon.drain();
    assert!(daemon.pool_idle(), "pool accounting not zero after drain");

    let mut lat = client_lat_ms.lock().unwrap().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p) as usize];
    println!(
        "  fleet    {jobs_per_sec:>9.1} jobs/s     (client p99 {:.1} ms, daemon e2e p99 {:.1} ms)",
        pct(&lat, 0.99),
        q("sortd.e2e_us", 0.99) / 1e3,
    );

    // Restart recovery (PR 9): time from `Sortd::start` over a populated
    // journal — replay included — to a probe job admitted and completed.
    // The journal is staged directly with the durable residue of a killed
    // daemon: mostly settled records (the dedupe set a long-lived daemon
    // accumulates) plus a kill-interrupted tail. Best-of for the same
    // noisy-neighbor reason as the kernels.
    const JOURNAL_JOBS: u64 = 200;
    let jdir = std::env::temp_dir().join(format!(
        "exp-trajectory-journal-{}",
        std::process::id()
    ));
    let mut recovery_ms = f64::INFINITY;
    for _ in 0..3 {
        let _ = std::fs::remove_dir_all(&jdir);
        let journal = Journal::open(&jdir).expect("journal opens");
        for i in 0..JOURNAL_JOBS {
            let spec = JobSpec {
                name: format!("stale-{i}"),
                input_bytes: JOB_RECORDS * RECORD_LEN as u64,
                mem_budget: 1 << 20,
                scratch_budget: 0,
                idem_key: Some(format!("stale-key-{i}")),
                ..JobSpec::default()
            };
            let mut rec = JournalRecord::accepted(format!("stale-key-{i}"), i + 1, spec);
            // One in twenty died mid-run; the rest settled.
            rec.state = if i % 20 == 0 { "running" } else { "done" }.into();
            rec.records = JOB_RECORDS;
            journal.record(&rec).expect("journal record");
        }
        let t0 = Instant::now();
        let daemon = Sortd::start(SortdConfig {
            listen: "127.0.0.1:0".into(),
            pool,
            backing: ScratchBacking::Memory,
            journal: Some(jdir.clone()),
            ..SortdConfig::default()
        })
        .expect("recovery daemon starts");
        let (mut probe, _) = generate(GenConfig::datamation(JOB_RECORDS, 99));
        let spec = JobSpec {
            name: "probe".into(),
            input_bytes: probe.len() as u64,
            mem_budget: 1 << 20,
            scratch_budget: 0,
            ..JobSpec::default()
        };
        let res = Client::new(daemon.addr())
            .submit(&spec, &probe)
            .expect("probe admitted after replay");
        recovery_ms = recovery_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        records_of_mut(&mut probe).sort_by_key(|r| r.key);
        assert_eq!(res.output, probe, "probe diverged from oracle");
        daemon.drain();
    }
    let _ = std::fs::remove_dir_all(&jdir);
    println!(
        "  restart  {recovery_ms:>9.1} ms to first admission ({JOURNAL_JOBS} journaled jobs)"
    );

    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::from("perf trajectory")),
        ("schema".into(), Json::from(1u64)),
        ("kernel_best_of".into(), Json::from(repeat as u64)),
        (
            "kernel".into(),
            Json::Obj(vec![
                ("onepass".into(), onepass_doc),
                ("twopass".into(), twopass_doc),
                ("pmerge4".into(), pmerge_doc),
                (
                    "registry".into(),
                    Json::Obj(
                        kernel_variants
                            .iter()
                            .map(|(name, _, doc)| (name.clone(), doc.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "string".into(),
            Json::Obj(vec![
                ("records".into(), Json::from(string_records)),
                ("corpus".into(), Json::from("shared-megaprefix 48+8")),
                ("runs".into(), Json::from(8u64)),
                (
                    "modes".into(),
                    Json::Obj(
                        string_modes
                            .iter()
                            .map(|(name, rps, key_bytes, compares)| {
                                (
                                    (*name).to_string(),
                                    Json::Obj(vec![
                                        ("records_per_sec".into(), Json::Float(*rps)),
                                        ("key_bytes".into(), Json::from(*key_bytes)),
                                        ("compares".into(), Json::from(*compares)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "ovc_key_bytes_saved_pct".into(),
                    Json::Float(string_saved_pct),
                ),
            ]),
        ),
        (
            "service".into(),
            Json::Obj(vec![
                ("jobs".into(), Json::from(jobs)),
                ("client_threads".into(), Json::from(THREADS)),
                ("records_per_job".into(), Json::from(JOB_RECORDS)),
                ("pool_mem_bytes".into(), Json::from(pool.mem_total)),
                ("wall_s".into(), Json::Float(wall_s)),
                ("jobs_per_sec".into(), Json::Float(jobs_per_sec)),
                ("client_p50_ms".into(), Json::Float(pct(&lat, 0.50))),
                ("client_p99_ms".into(), Json::Float(pct(&lat, 0.99))),
                (
                    "daemon".into(),
                    Json::Obj(vec![
                        ("e2e_p50_us".into(), Json::Float(q("sortd.e2e_us", 0.50))),
                        ("e2e_p99_us".into(), Json::Float(q("sortd.e2e_us", 0.99))),
                        ("exec_p50_us".into(), Json::Float(q("sortd.exec_us", 0.50))),
                        ("exec_p99_us".into(), Json::Float(q("sortd.exec_us", 0.99))),
                        (
                            "queue_wait_p99_us".into(),
                            Json::Float(q("sortd.queue_wait_us", 0.99)),
                        ),
                    ]),
                ),
                ("all_outputs_oracle_checked".into(), Json::Bool(true)),
            ]),
        ),
        (
            "restart_recovery".into(),
            Json::Obj(vec![
                ("journaled_jobs".into(), Json::from(JOURNAL_JOBS)),
                ("best_of".into(), Json::from(3u64)),
                ("first_admission_ms".into(), Json::Float(recovery_ms)),
            ]),
        ),
        // The gated contract. benchdiff compares exactly these keys;
        // directions for the non-rate entries live in `tracked_meta`.
        (
            "tracked".into(),
            Json::Obj(
                vec![
                    ("onepass_records_per_sec".into(), Json::Float(onepass_rps)),
                    ("twopass_records_per_sec".into(), Json::Float(twopass_rps)),
                    ("pmerge4_records_per_sec".into(), Json::Float(pmerge_rps)),
                    ("service_jobs_per_sec".into(), Json::Float(jobs_per_sec)),
                ]
                .into_iter()
                .chain(kernel_variants.iter().map(|(name, rps, _)| {
                    (format!("kernel_{name}_records_per_sec"), Json::Float(*rps))
                }))
                .chain([
                    ("string_ovc_records_per_sec".into(), Json::Float(ovc_rps)),
                    (
                        "string_naive_records_per_sec".into(),
                        Json::Float(naive_rps),
                    ),
                    (
                        "string_ovc_key_bytes_saved_pct".into(),
                        Json::Float(string_saved_pct),
                    ),
                    (
                        "service_e2e_p99_ms".into(),
                        Json::Float(q("sortd.e2e_us", 0.99) / 1e3),
                    ),
                    (
                        "service_restart_recovery_ms".into(),
                        Json::Float(recovery_ms),
                    ),
                ])
                .collect(),
            ),
        ),
        // Per-metric gate directions; anything absent here is
        // higher-is-better (the rate default).
        (
            "tracked_meta".into(),
            Json::Obj(vec![
                ("service_e2e_p99_ms".into(), Json::from("lower_is_better")),
                (
                    "service_restart_recovery_ms".into(),
                    Json::from("lower_is_better"),
                ),
            ]),
        ),
    ]);
    if let Some(path) = json_out {
        std::fs::write(&path, doc.dump_pretty()).expect("write JSON snapshot");
        println!("\nwrote {path}");
    }
}
