//! Ablation: switch off AlphaSort's design choices one at a time and watch
//! the elapsed time respond, on *real-time paced* simulated disks so IO
//! overlap genuinely costs wall-clock (sped up 4× from 1993 rates; every
//! ratio preserved).
//!
//! Choices ablated, each tied to its paper claim:
//! * triple buffering (§6: "triple buffering the reads and writes keeps the
//!   disks transferring at their spiral read and write rates") → depth 1,
//! * (key-prefix, pointer) run formation (§4) → whole-record sort,
//! * worker chores (§5) → uniprocessor,
//! * striping (§6) → a single disk (the one-minute barrier, scaled).
//!
//! ```sh
//! cargo run --release -p alphasort-bench --bin exp_ablation [records]
//! ```

use std::sync::Arc;
use std::time::Instant;

use alphasort_core::driver::one_pass;
use alphasort_core::io::{StripeSink, StripeSource};
use alphasort_core::runform::Representation;
use alphasort_core::SortConfig;
use alphasort_dmgen::{validate_reader, GenConfig, Generator, RECORD_LEN};
use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_perfmodel::table::Table;
use alphasort_stripefs::{StripedReader, StripedWriter, Volume};

/// Wall-clock acceleration over true 1993 device speeds.
const SPEEDUP: f64 = 4.0;

struct Setup {
    volume: Arc<Volume>,
    input: Arc<alphasort_stripefs::StripedFile>,
    checksum: alphasort_dmgen::Checksum,
}

fn setup(disks: usize, records: u64) -> Setup {
    let spec = catalog::rz26();
    let members: Vec<_> = (0..disks)
        .map(|i| {
            SimDisk::new(
                format!("rz26-{i}"),
                spec.clone(),
                Arc::new(MemStorage::new()),
                Pacing::RealTime { speedup: SPEEDUP },
                None,
            )
        })
        .collect();
    let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(members))));
    let bytes = records * RECORD_LEN as u64;
    let input = Arc::new(volume.create_across_all("input", 64 * 1024, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 99));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 5_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).expect("load");
    }
    w.finish().expect("load");
    Setup {
        volume,
        input,
        checksum: gen.checksum(),
    }
}

/// Run one configuration; returns elapsed seconds at 1993 scale.
fn run(s: &Setup, name: &str, cfg: &SortConfig, depth: usize) -> f64 {
    let output = Arc::new(s.volume.create_across_all(
        format!("out-{name}"),
        64 * 1024,
        s.input.len(),
    ));
    let t0 = Instant::now();
    let mut source = StripeSource::with_depth(Arc::clone(&s.input), depth);
    let mut sink = StripeSink::with_depth(Arc::clone(&output), depth);
    one_pass(&mut source, &mut sink, cfg).expect("sort");
    let wall = t0.elapsed().as_secs_f64();
    let mut reader = StripedReader::new(Arc::clone(&output));
    validate_reader(&mut reader, s.checksum)
        .expect("read back")
        .expect("invalid output");
    s.volume.delete(&output);
    wall * SPEEDUP // report at true 1993 speed
}

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    println!(
        "== ablation: {} records ({} MB) on paced RZ26 disks (1993-scale seconds) ==\n",
        records,
        records / 10_000
    );
    let base_cfg = SortConfig {
        run_records: 20_000,
        gather_batch: 5_000,
        workers: 2,
        ..Default::default()
    };

    let eight = setup(8, records);
    let mut t = Table::new(["configuration", "1993-scale s", "vs baseline"]);
    let baseline = run(&eight, "baseline", &base_cfg, 3);
    t.row([
        "baseline: 8 disks, triple-buffered, key-prefix, 2 workers".to_string(),
        format!("{baseline:.1}"),
        "1.00x".to_string(),
    ]);

    let no_overlap = run(&eight, "depth1", &base_cfg, 1);
    t.row([
        "no triple buffering (depth 1)".to_string(),
        format!("{no_overlap:.1}"),
        format!("{:.2}x", no_overlap / baseline),
    ]);

    let record_cfg = SortConfig {
        representation: Representation::Record,
        ..base_cfg.clone()
    };
    let record_rep = run(&eight, "record", &record_cfg, 3);
    t.row([
        "record sort instead of key-prefix".to_string(),
        format!("{record_rep:.1}"),
        format!("{:.2}x", record_rep / baseline),
    ]);

    let solo_cfg = SortConfig {
        workers: 0,
        ..base_cfg.clone()
    };
    let solo = run(&eight, "solo", &solo_cfg, 3);
    t.row([
        "no workers (uniprocessor)".to_string(),
        format!("{solo:.1}"),
        format!("{:.2}x", solo / baseline),
    ]);

    let one = setup(1, records);
    let single = run(&one, "onedisk", &base_cfg, 3);
    t.row([
        "one disk instead of eight (no striping)".to_string(),
        format!("{single:.1}"),
        format!("{:.2}x", single / baseline),
    ]);
    print!("{}", t.render());

    println!(
        "\nreadings: striping is the big lever (~8x of disk time). The cpu-side\n\
         choices (buffering depth, representation, workers) show ~1.0x here\n\
         because a modern host sorts a stride thousands of times faster than a\n\
         1993 CPU — there is nothing for the overlap to hide. On the paper's\n\
         machine, QuickSort time ≈ read time (3.87 s vs ~2.1 s of cpu), which\n\
         is exactly why they needed triple buffering and worker chores; the\n\
         stripefs reader test `read_ahead_keeps_multiple_requests_outstanding`\n\
         reproduces that regime by giving each stride real per-stride compute."
    );
}
