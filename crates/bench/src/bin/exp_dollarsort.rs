//! §8 DollarSort: how much can you sort for a dollar?
//!
//! A dollar buys `60 × 10⁶ / price` seconds of machine time, so cheap
//! machines get long budgets — "PCs could win the DollarSort benchmark."
//! The table shows the paper's machines and the modeled gigabytes each
//! sorts within its dollar.

use alphasort_perfmodel::machines::{minutesort_machine, table8};
use alphasort_perfmodel::metrics::{dollarsort, dollarsort_budget_s};
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::{secs, Table};

fn main() {
    println!("== DollarSort (§8): one dollar of machine time ==\n");
    let mut t = Table::new([
        "system",
        "price k$",
        "budget",
        "modeled GB for 1$",
        "GB/$ rank input",
    ]);
    let mut machines = table8();
    machines.push(minutesort_machine());

    for m in &machines {
        let budget = dollarsort_budget_s(m.system_price);
        // Grow the sort until the model says the budget is spent. A
        // one-pass model is optimistic for multi-GB sorts on 256 MB
        // machines, so cap at a memory-feasible multiple and fall back to
        // rate × budget beyond it (IO-bound regime: fine for a model).
        let rate_mbps = {
            let b = datamation_model(m, 100.0);
            100.0 / (b.total() - b.startup - b.shutdown)
        };
        let sorted_mb = rate_mbps * budget;
        let r = dollarsort(m.system_price, (sorted_mb * 1e6) as u64, budget);
        t.row([
            m.name.clone(),
            format!("{:.0}", m.system_price / 1e3),
            format!("{} s", secs(budget)),
            format!("{:.1}", r.sorted_gb),
            format!("{:.2}", r.sorted_gb),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nShape check: the cheapest machine (DEC 3000) gets the longest\n\
         budget and sorts the most per dollar — \"Super-computers will\n\
         probably win the MinuteSort and workstations will win the\n\
         DollarSort trophies.\""
    );
}
