//! §9's closing projection: "A terabyte-per-minute parallel sort is our
//! long-term goal (not a misprint!). That will need hundreds of fast
//! processors, gigabytes of memory, thousands of disks, and a 20 GB/s
//! interconnect."
//!
//! This experiment re-derives those magnitudes from the reproduction's own
//! calibrated constants (per-disk rates, per-byte CPU costs, §6 economics),
//! plus the nearer-term check: "At a gigabyte-per-minute, it takes more
//! than 16 hours to sort a terabyte."

use alphasort_perfmodel::economics::{disks_needed, wce_disk_saving};
use alphasort_perfmodel::table::Table;

fn main() {
    println!("== §9: the road to a terabyte per minute ==\n");

    // The 16-hour check at 1 GB/minute.
    let hours = 1_000_000.0 / 1_000.0 / 60.0; // 1 TB at 1 GB/min, in hours
    println!(
        "at a gigabyte per minute, a terabyte takes {hours:.1} hours\n\
         (paper: \"more than 16 hours\")\n"
    );

    let tb_mb = 1_000_000.0; // 1 TB in MB
    let target_s = 60.0;

    // Disks: two-pass is mandatory at this scale (no terabyte memories in
    // 1993), so 2 TB in + 2 TB out cross the disks within the minute.
    let disk_r = 4.5; // the paper's commodity SCSI disk
    let disk_w = 3.5;
    let one_pass_disks = disks_needed(disk_r, disk_w, tb_mb, target_s);
    let two_pass_disks = 2 * one_pass_disks;

    // Interconnect: in a partitioned parallel sort (the Hypercube pattern
    // §2 describes) each record crosses the interconnect once, between its
    // reader-sorter and its target partition.
    let interconnect_gbs = tb_mb / 1e3 / target_s;

    // CPUs: the calibrated merge+gather cost is 3.9 cpu-seconds per 100 MB
    // on one 200 MHz Alpha; quicksort adds 2.1 more.
    let cpu_s_per_100mb = 2.1 + 3.9;
    let cpus = (cpu_s_per_100mb * (tb_mb / 100.0) / target_s).ceil();

    // Memory: a two-pass sort needs roughly sqrt(input × run-IO-unit)
    // buffers; with 1 GB runs a terabyte makes 1,000 runs, each needing a
    // ~1 MB merge buffer, plus the 1 GB run-formation buffer.
    let run_gb = 1.0;
    let runs = tb_mb / 1e3 / run_gb;
    let memory_gb = run_gb + runs * 1.0 / 1e3;

    let mut t = Table::new(["resource", "derived need", "paper's words"]);
    t.row([
        "disks (two-pass)".to_string(),
        format!("{two_pass_disks} commodity SCSI"),
        "\"thousands of disks\"".to_string(),
    ]);
    t.row([
        "interconnect".to_string(),
        format!("{interconnect_gbs:.0} GB/s (each record crosses once)"),
        "\"a 20 GB/s interconnect\"".to_string(),
    ]);
    t.row([
        "processors (200 MHz)".to_string(),
        format!("{cpus:.0}"),
        "\"hundreds of fast processors\"".to_string(),
    ]);
    t.row([
        "memory".to_string(),
        format!("{memory_gb:.0} GB (1 GB runs + merge buffers)"),
        "\"gigabytes of memory\"".to_string(),
    ]);
    print!("{}", t.render());

    let future_disks = 2 * disks_needed(20.0, 16.0, tb_mb, target_s);
    println!(
        "\nWith 1993's 4.5 MB/s drives the disk count is ~{two_pass_disks}; the paper's\n\
         \"thousands\" anticipated the faster drives of its 5–10 year horizon\n\
         (at 20 MB/s per drive: ~{future_disks})."
    );
    println!(
        "\nWCE footnote applied at scale: enabling write caching would save\n\
         {:.0}% of those disks ({} instead of {}).",
        wce_disk_saving(disk_r, disk_w) * 100.0,
        (f64::from(two_pass_disks) * (1.0 - wce_disk_saving(disk_r, disk_w))).ceil(),
        two_pass_disks
    );
    println!(
        "\nThe paper guessed \"five or ten years off\"; the sortbenchmark.org\n\
         TeraByte Sort record fell in 1998 (still hours), and a terabyte per\n\
         minute arrived around 2009 — fifteen years out, with roughly these\n\
         resource shapes."
    );
}
