//! Distributed netsort vs the §2 designs it makes concrete.
//!
//! The paper's §2 baseline is a shared-nothing cluster: partition by
//! probabilistic splitting, exchange, sort locally. `exp_baseline` fakes
//! that inside one process; this experiment runs the *real* subsystem — N
//! worker threads behind a transport, coordinator-sampled splitters, an
//! all-to-all record exchange, and the AlphaSort pipeline per node — at
//! 1/2/4/8 nodes over loopback channels and real TCP sockets, against the
//! in-process `partition_sort` and single-node AlphaSort references.
//!
//! Usage: `exp_netsort [RECORDS]` (default 500_000 = 50 MB).
//!
//! The 4-node loopback run is traced: one Chrome `trace_event` file per
//! node (each node's spans live on its own `nodeK` track) lands in the
//! system temp directory, ready for Perfetto / `chrome://tracing`.

use std::time::Instant;

use alphasort_obs as obs;

use alphasort_core::baseline::{partition_sort, PartitionSortConfig};
use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, validate_records, GenConfig};
use alphasort_netsort::{netsort_loopback, netsort_tcp, NetsortConfig, RetryPolicy};
use alphasort_perfmodel::table::Table;

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);
    let (input, cs) = generate(GenConfig::datamation(records, 61));
    let mb = (records * 100) as f64 / 1e6;

    println!("== netsort: distributed shared-nothing sort ({records} records, {mb:.0} MB) ==\n");
    let mut t = Table::new([
        "configuration",
        "elapsed s",
        "MB/s",
        "shipped MB",
        "exch wait s",
        "skew",
    ]);

    // Single-node AlphaSort: the number the cluster has to beat.
    let cfg = SortConfig {
        run_records: 100_000,
        gather_batch: 10_000,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut source = MemSource::new(input.clone(), 1_000_000);
    let mut sink = MemSink::new();
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    let s = t0.elapsed().as_secs_f64();
    validate_records(sink.data(), cs).unwrap();
    t.row([
        "AlphaSort, 1 node (reference)".to_string(),
        format!("{s:.3}"),
        format!("{:.1}", mb / s),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    let ncfg = NetsortConfig {
        sort: cfg.clone(),
        ..Default::default()
    };
    let mut traced = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        // Trace the 4-node run: one Chrome trace file per node, split by track.
        let trace_this = nodes == 4;
        if trace_this {
            obs::enable(obs::DEFAULT_CAPACITY);
        }
        let t0 = Instant::now();
        let (out, st) = netsort_loopback(&input, nodes, &ncfg).unwrap();
        let s = t0.elapsed().as_secs_f64();
        if trace_this {
            obs::disable();
            let snap = obs::snapshot();
            for node in 0..nodes {
                let track = format!("node{node}");
                let per = snap.filter_track(Some(&track));
                let path = std::env::temp_dir().join(format!("exp_netsort.{track}.trace.json"));
                std::fs::write(&path, obs::export::chrome_trace(&per).dump()).unwrap();
                traced.push((track, per.events.len(), path));
            }
            obs::reset();
        }
        validate_records(&out, cs).unwrap();
        t.row([
            format!("netsort loopback, {nodes} node(s)"),
            format!("{s:.3}"),
            format!("{:.1}", mb / s),
            format!("{:.1}", st.exchange_bytes_out as f64 / 1e6),
            format!("{:.3}", st.exchange_wait.as_secs_f64()),
            format!("{:.2}", st.exchange_skew()),
        ]);
    }
    for nodes in [2usize, 4] {
        let t0 = Instant::now();
        let (out, st) = netsort_tcp(&input, nodes, &ncfg, &RetryPolicy::default()).unwrap();
        let s = t0.elapsed().as_secs_f64();
        validate_records(&out, cs).unwrap();
        t.row([
            format!("netsort tcp, {nodes} node(s)"),
            format!("{s:.3}"),
            format!("{:.1}", mb / s),
            format!("{:.1}", st.exchange_bytes_out as f64 / 1e6),
            format!("{:.3}", st.exchange_wait.as_secs_f64()),
            format!("{:.2}", st.exchange_skew()),
        ]);
    }
    // The in-process imitation from §2, for scale.
    for nodes in [4usize, 8] {
        let pcfg = PartitionSortConfig {
            nodes,
            samples_per_node: 256,
            ..Default::default()
        };
        let t0 = Instant::now();
        let (out, stats) = partition_sort(&input, &pcfg);
        let s = t0.elapsed().as_secs_f64();
        validate_records(&out, cs).unwrap();
        t.row([
            format!("partition-sort (in-process), {nodes} nodes"),
            format!("{s:.3}"),
            format!("{:.1}", mb / s),
            "-".to_string(),
            "-".to_string(),
            format!("{:.2}", stats.skew()),
        ]);
    }
    print!("{}", t.render());

    if !traced.is_empty() {
        println!("\nper-node traces from the 4-node loopback run (Perfetto / chrome://tracing):");
        for (track, events, path) in &traced {
            println!("  {track}: {events} events -> {}", path.display());
        }
    }

    println!(
        "\nnetsort pays for real exchange (sampling, framing, {}-record data \
         batches) where partition-sort just moves pointers; the win it buys is \
         the one §2 describes — each node sorts 1/N of the data with its own \
         cpu, memory and disks.",
        ncfg.batch_records
    );
}
