//! §5: shared-memory multiprocessor speedup.
//!
//! "If multiprocessors are available, AlphaSort breaks the QuickSort and
//! Merge jobs into smaller chores that are executed by worker processors
//! while the root process performs all IO. … It also demonstrates speedup
//! using multiple processors on a shared memory." Table 8's 3-cpu row is
//! 1.3× the 1-cpu row because the paper's runs were disk-bound; with IO out
//! of the way the chore decomposition itself shows its scaling — that is
//! what this experiment measures on the host.

use std::time::Instant;

use alphasort_bench::host_sort;
use alphasort_core::SortConfig;
use alphasort_perfmodel::machines::table8;
use alphasort_perfmodel::phase::datamation_model;
use alphasort_perfmodel::table::Table;

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .clamp(1, 7);

    println!("== §5: worker scaling, in-memory sort of {records} records (host) ==\n");
    let mut t = Table::new([
        "workers",
        "elapsed s",
        "speedup",
        "sort cpu s",
        "gather cpu s",
    ]);
    let mut base = 0.0f64;
    for workers in 0..=max_workers {
        let cfg = SortConfig {
            run_records: 100_000,
            workers,
            gather_batch: 10_000,
            ..Default::default()
        };
        // Median of 3 for noise.
        let mut times: Vec<(f64, f64, f64)> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                let st = host_sort(records, &cfg);
                (
                    t0.elapsed().as_secs_f64(),
                    st.sort_time.as_secs_f64(),
                    st.gather_time.as_secs_f64(),
                )
            })
            .collect();
        times.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (elapsed, sort_cpu, gather_cpu) = times[1];
        if workers == 0 {
            base = elapsed;
        }
        t.row([
            workers.to_string(),
            format!("{elapsed:.3}"),
            format!("{:.2}x", base / elapsed),
            format!("{sort_cpu:.3}"),
            format!("{gather_cpu:.3}"),
        ]);
    }
    print!("{}", t.render());

    println!("\n== the paper's regime: same machine, 1 vs 3 cpus (model) ==\n");
    let mut one = table8()[2].clone(); // 1-cpu DEC 7000
    let b1 = datamation_model(&one, 100.0);
    one.cpus = 3;
    let b3 = datamation_model(&one, 100.0);
    println!(
        "1 cpu: {:.2} s   3 cpus (same disks): {:.2} s — disk-bound, so extra\n\
         cpus help little; the paper's 7.0 s 3-cpu row also doubled the disks.",
        b1.total(),
        b3.total()
    );
    println!("\nwith fast enough disks the model turns cpu-bound and 3 cpus pay:\n");
    let mut fast = table8()[2].clone();
    fast.read_mbps = 200.0;
    fast.write_mbps = 200.0;
    for cpus in [1u32, 2, 3] {
        fast.cpus = cpus;
        let b = datamation_model(&fast, 100.0);
        println!("  {cpus} cpu(s): {:.2} s", b.total());
    }
}
