//! The trajectory gate: diff two BENCH files' `tracked` sections and exit
//! nonzero on regression.
//!
//! Usage: `benchdiff OLD.json NEW.json [--max-regression-pct P] [--scale-new F]`
//!
//! Every `tracked` metric is a higher-is-better rate (records/s, jobs/s).
//! For each metric in OLD the regression is `(old - new) / old`; any
//! metric regressing more than P percent (default 10), or present in OLD
//! but missing from NEW, fails the diff. Metrics only in NEW are reported
//! but never gate — adding coverage must not break the build that adds it.
//!
//! `--scale-new F` multiplies every NEW value by F before comparing. Its
//! purpose is the gate's own self-test: `benchdiff X X --scale-new 0.85`
//! simulates a 15% across-the-board slowdown deterministically, with no
//! dependence on machine speed, so CI can prove the gate actually fires.

use std::process::ExitCode;

use alphasort_minijson::Json;

fn tracked(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(Json::Obj(fields)) = doc.get("tracked") else {
        return Err(format!("{path}: no `tracked` object — not a trajectory BENCH file"));
    };
    fields
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or_else(|| format!("{path}: tracked.{k} is not a number"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2; // a flag consumes its value
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let [old_path, new_path] = positional[..] else {
        eprintln!("usage: benchdiff OLD.json NEW.json [--max-regression-pct P] [--scale-new F]");
        return ExitCode::from(2);
    };
    let max_pct: f64 = match flag("--max-regression-pct").map(|v| v.parse()) {
        Some(Ok(p)) => p,
        Some(Err(_)) => {
            eprintln!("bad --max-regression-pct value");
            return ExitCode::from(2);
        }
        None => 10.0,
    };
    let scale: f64 = match flag("--scale-new").map(|v| v.parse()) {
        Some(Ok(f)) => f,
        Some(Err(_)) => {
            eprintln!("bad --scale-new value");
            return ExitCode::from(2);
        }
        None => 1.0,
    };

    let (old, new) = match (tracked(old_path), tracked(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "benchdiff: {old_path} -> {new_path} (gate: >{max_pct:.0}% regression{})",
        if scale != 1.0 {
            format!(", new scaled by {scale}")
        } else {
            String::new()
        }
    );
    println!("{:<28} {:>14} {:>14} {:>9}  verdict", "tracked metric", "old", "new", "delta");
    let mut failures = 0u32;
    for (name, old_v) in &old {
        match new.iter().find(|(k, _)| k == name) {
            Some((_, new_raw)) => {
                let new_v = new_raw * scale;
                let delta_pct = if *old_v > 0.0 {
                    100.0 * (new_v - old_v) / old_v
                } else {
                    0.0
                };
                let regressed = -delta_pct > max_pct;
                if regressed {
                    failures += 1;
                }
                println!(
                    "{name:<28} {old_v:>14.1} {new_v:>14.1} {delta_pct:>+8.1}%  {}",
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => {
                failures += 1;
                println!("{name:<28} {old_v:>14.1} {:>14} {:>9}  MISSING", "-", "-");
            }
        }
    }
    for (name, new_v) in &new {
        if !old.iter().any(|(k, _)| k == name) {
            println!("{name:<28} {:>14} {new_v:>14.1} {:>9}  new (not gated)", "-", "-");
        }
    }
    if failures > 0 {
        eprintln!("benchdiff: FAIL — {failures} tracked metric(s) regressed past {max_pct:.0}%");
        ExitCode::FAILURE
    } else {
        println!("benchdiff: ok — no tracked metric regressed past {max_pct:.0}%");
        ExitCode::SUCCESS
    }
}
