//! The trajectory gate: diff two BENCH files' `tracked` sections and exit
//! nonzero on regression.
//!
//! Usage: `benchdiff OLD.json NEW.json [--max-regression-pct P] [--scale-new F]`
//!
//! Most `tracked` metrics are higher-is-better rates (records/s, jobs/s),
//! but not all of them — a latency quantile regresses by going *up*. The
//! BENCH file's optional `tracked_meta` object declares the exceptions:
//! `"tracked_meta": { "service_e2e_p99_ms": "lower_is_better" }`. A metric
//! absent from `tracked_meta` (or a file without the object at all — every
//! BENCH file before PR 8) is gated as higher-is-better, so old files keep
//! diffing unchanged. Direction comes from the OLD file's metadata,
//! falling back to NEW's for metrics OLD has not annotated — the baseline
//! owns the contract, but a newly-annotated metric is honored the first
//! time it appears.
//!
//! For each metric in OLD the signed delta is `(new - old) / old`; a
//! higher-is-better metric fails when the delta is *below* −P percent, a
//! lower-is-better one when it is *above* +P percent (default P = 10).
//! A metric present in OLD but missing from NEW fails the diff. Metrics
//! only in NEW are reported but never gate — adding coverage must not
//! break the build that adds it.
//!
//! `--scale-new F` multiplies every NEW value by F before comparing. Its
//! purpose is the gate's own self-test: `benchdiff X X --scale-new 0.85`
//! simulates a 15% across-the-board slowdown deterministically, with no
//! dependence on machine speed, so CI can prove the gate fires in *both*
//! directions — 0.85 must trip the rate metrics, 1.2 must trip the
//! latency ones.

use std::process::ExitCode;

use alphasort_minijson::Json;

/// Which way a tracked metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Rates: a drop past the gate is a regression (the default).
    HigherIsBetter,
    /// Latencies: a rise past the gate is a regression.
    LowerIsBetter,
}

impl Direction {
    fn from_meta(s: &str) -> Option<Direction> {
        match s {
            "higher_is_better" => Some(Direction::HigherIsBetter),
            "lower_is_better" => Some(Direction::LowerIsBetter),
            _ => None,
        }
    }
}

/// A BENCH file's gate-relevant content: tracked metrics in file order,
/// plus the per-metric direction annotations.
struct TrackedDoc {
    metrics: Vec<(String, f64)>,
    meta: Vec<(String, Direction)>,
}

impl TrackedDoc {
    fn direction_of(&self, name: &str) -> Option<Direction> {
        self.meta.iter().find(|(k, _)| k == name).map(|(_, d)| *d)
    }
}

fn tracked(path: &str) -> Result<TrackedDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(Json::Obj(fields)) = doc.get("tracked") else {
        return Err(format!("{path}: no `tracked` object — not a trajectory BENCH file"));
    };
    let metrics = fields
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or_else(|| format!("{path}: tracked.{k} is not a number"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    // `tracked_meta` is optional (pre-PR-8 files lack it) but must be
    // well-formed when present: an unknown direction string is a file
    // error, not a silent higher-is-better default.
    let meta = match doc.get("tracked_meta") {
        None => Vec::new(),
        Some(Json::Obj(entries)) => entries
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .and_then(Direction::from_meta)
                    .map(|d| (k.clone(), d))
                    .ok_or_else(|| {
                        format!(
                            "{path}: tracked_meta.{k} must be \
                             \"higher_is_better\" or \"lower_is_better\""
                        )
                    })
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(format!("{path}: `tracked_meta` must be an object")),
    };
    Ok(TrackedDoc { metrics, meta })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2; // a flag consumes its value
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let [old_path, new_path] = positional[..] else {
        eprintln!("usage: benchdiff OLD.json NEW.json [--max-regression-pct P] [--scale-new F]");
        return ExitCode::from(2);
    };
    let max_pct: f64 = match flag("--max-regression-pct").map(|v| v.parse()) {
        Some(Ok(p)) => p,
        Some(Err(_)) => {
            eprintln!("bad --max-regression-pct value");
            return ExitCode::from(2);
        }
        None => 10.0,
    };
    let scale: f64 = match flag("--scale-new").map(|v| v.parse()) {
        Some(Ok(f)) => f,
        Some(Err(_)) => {
            eprintln!("bad --scale-new value");
            return ExitCode::from(2);
        }
        None => 1.0,
    };

    let (old, new) = match (tracked(old_path), tracked(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("benchdiff: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "benchdiff: {old_path} -> {new_path} (gate: >{max_pct:.0}% regression{})",
        if scale != 1.0 {
            format!(", new scaled by {scale}")
        } else {
            String::new()
        }
    );
    println!("{:<28} {:>14} {:>14} {:>9}  verdict", "tracked metric", "old", "new", "delta");
    let mut failures = 0u32;
    for (name, old_v) in &old.metrics {
        let dir = old
            .direction_of(name)
            .or_else(|| new.direction_of(name))
            .unwrap_or(Direction::HigherIsBetter);
        match new.metrics.iter().find(|(k, _)| k == name) {
            Some((_, new_raw)) => {
                let new_v = new_raw * scale;
                let delta_pct = if *old_v > 0.0 {
                    100.0 * (new_v - old_v) / old_v
                } else {
                    0.0
                };
                let regressed = match dir {
                    Direction::HigherIsBetter => -delta_pct > max_pct,
                    Direction::LowerIsBetter => delta_pct > max_pct,
                };
                if regressed {
                    failures += 1;
                }
                println!(
                    "{name:<28} {old_v:>14.1} {new_v:>14.1} {delta_pct:>+8.1}%  {}",
                    match (regressed, dir) {
                        (true, _) => "REGRESSED",
                        (false, Direction::HigherIsBetter) => "ok",
                        (false, Direction::LowerIsBetter) => "ok (lower is better)",
                    }
                );
            }
            None => {
                failures += 1;
                println!("{name:<28} {old_v:>14.1} {:>14} {:>9}  MISSING", "-", "-");
            }
        }
    }
    for (name, new_v) in &new.metrics {
        if !old.metrics.iter().any(|(k, _)| k == name) {
            println!("{name:<28} {:>14} {new_v:>14.1} {:>9}  new (not gated)", "-", "-");
        }
    }
    if failures > 0 {
        eprintln!("benchdiff: FAIL — {failures} tracked metric(s) regressed past {max_pct:.0}%");
        ExitCode::FAILURE
    } else {
        println!("benchdiff: ok — no tracked metric regressed past {max_pct:.0}%");
        ExitCode::SUCCESS
    }
}
