//! §4's CPU-time comparison of the QuickSort representations:
//!
//! * "record sort was 30% slower than pointer sort and 270% slower than key
//!   sort" (i.e. key sort ≈ 3.7× faster than record sort),
//! * "the QuickSort time improved by 25%" moving from full keys to
//!   prefixes,
//!
//! shown two ways: wall-clock on the modern host, and miss counts on the
//! simulated 1993 hierarchy — because thirty years of cache growth and
//! prefetching have *inverted* part of the 1993 ordering (see the notes the
//! program prints). Also: the footnote's 256-bucket partition sort and the
//! OVC merge-effort comparison.

use std::time::Instant;

use alphasort_cachesim::{traced_quicksort, Hierarchy, QuickSortVariant};
use alphasort_core::ovc::{plain_merge_bytes, OvcMerger};
use alphasort_core::partition::partition_order;
use alphasort_core::runform::{key_order, key_prefix_order, pointer_order, sort_records_in_place};
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, Record};
use alphasort_perfmodel::table::Table;

/// Best-of-3 wall time of `f` (copies and setup excluded by the caller).
fn best_of_3(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let n = 1_000_000u64;
    let (data, _) = generate(GenConfig::datamation(n, 0xA1FA));

    println!("== §4 representations: host wall-clock ({n} records) ==\n");
    // Record sort mutates in place: clone *outside* the timed region.
    let mut copies: Vec<Vec<u8>> = (0..3).map(|_| data.clone()).collect();
    let mut record_t = f64::INFINITY;
    for copy in &mut copies {
        let t0 = Instant::now();
        sort_records_in_place(copy);
        record_t = record_t.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&copy);
    }

    let pointer_t = best_of_3(|| {
        std::hint::black_box(pointer_order(&data));
    });
    let key_t = best_of_3(|| {
        std::hint::black_box(key_order(&data));
    });
    let prefix_t = best_of_3(|| {
        std::hint::black_box(key_prefix_order(&data));
    });
    let partition_t = best_of_3(|| {
        std::hint::black_box(partition_order(&data));
    });

    let mut t = Table::new(["representation", "seconds", "speed vs record"]);
    for (name, secs) in [
        ("record", record_t),
        ("pointer", pointer_t),
        ("key", key_t),
        ("key-prefix", prefix_t),
        ("partition (256-bucket) + prefix", partition_t),
    ] {
        t.row([
            name.to_string(),
            format!("{secs:.3}"),
            format!("{:.2}x", record_t / secs),
        ]);
    }
    print!("{}", t.render());

    println!("\n== §4 representations: 1993 hierarchy (cache simulator) ==\n");
    let mut t1 = Table::new([
        "representation",
        "D-miss/rec",
        "B-miss/rec",
        "vs record (D)",
    ]);
    let mut d_miss = Vec::new();
    for v in QuickSortVariant::ALL {
        let mut mem = Hierarchy::alpha_axp();
        let r = traced_quicksort(100_000, 7, v, &mut mem);
        d_miss.push(r.d_misses_per_elem());
        t1.row([
            v.name().to_string(),
            format!("{:.2}", r.d_misses_per_elem()),
            format!("{:.3}", r.b_misses_per_elem()),
            format!("{:.2}x", d_miss[0] / r.d_misses_per_elem()),
        ]);
    }
    print!("{}", t1.render());

    println!("\npaper vs this reproduction:");
    println!(
        "  key vs key-prefix (host): paper 1.25x, measured {:.2}x — reproduces",
        key_t / prefix_t
    );
    println!(
        "  record vs key (1993 sim): paper 3.7x cpu, simulated {:.1}x D-misses — shape holds",
        d_miss[0] / d_miss[2]
    );
    println!(
        "  record vs pointer (host): paper 0.77x, measured {:.2}x — INVERTED on modern\n\
         hardware: 32 MB caches and prefetchers make 200-byte exchanges cheap while\n\
         pointer sort's random dereferences pay full memory latency. This is the\n\
         paper's own prediction (\"this trend will widen the speed gap\") playing out.",
        record_t / pointer_t
    );
    println!(
        "  partition vs key-prefix (host): paper speculated >1x, measured {:.2}x —\n\
         the footnote was right: the distributive sort beats plain QuickSort.",
        prefix_t / partition_t
    );

    println!("\n== OVC merge effort (the technique the authors were evaluating) ==\n");
    let mut t2 = Table::new([
        "key distribution",
        "plain key-bytes",
        "ovc key-bytes",
        "saving",
    ]);
    for (label, dist) in [
        ("random (Datamation)", KeyDistribution::Random),
        (
            "6-byte common prefix",
            KeyDistribution::CommonPrefix { shared: 6 },
        ),
        (
            "duplicate-heavy",
            KeyDistribution::DupHeavy { cardinality: 64 },
        ),
    ] {
        let (d, _) = generate(GenConfig {
            records: 100_000,
            seed: 5,
            dist,
        });
        let runs: Vec<Vec<Record>> = records_of(&d)
            .chunks(10_000)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_by_key(|a| a.key);
                v
            })
            .collect();
        let refs: Vec<&[Record]> = runs.iter().map(|r| r.as_slice()).collect();
        let (_, plain) = plain_merge_bytes(refs.clone());
        let mut m = OvcMerger::new(refs);
        while m.next_record().is_some() {}
        let ovc = m.effort;
        t2.row([
            label.to_string(),
            plain.key_bytes.to_string(),
            ovc.key_bytes.to_string(),
            format!(
                "{:.1}%",
                (1.0 - ovc.key_bytes as f64 / plain.key_bytes as f64) * 100.0
            ),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "\npaper: \"For binary data, like the keys of the Datamation benchmark,\n\
         offset value coding will not beat AlphaSort's simpler key-prefix sort\"\n\
         — the random-key margin is modest; skewed keys change the picture."
    );
}
