//! Shared plumbing for the experiment binaries and the bench targets.
//!
//! Each `exp_*` binary regenerates one table or figure of the paper; see
//! `DESIGN.md`'s per-experiment index and `EXPERIMENTS.md` for the recorded
//! paper-vs-measured comparisons.

pub mod harness;

use std::sync::Arc;

use alphasort_core::driver::one_pass;
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::{SortConfig, SortStats};
use alphasort_dmgen::{generate, validate_records, GenConfig, RECORD_LEN};
use alphasort_iosim::{
    catalog, BackendKind, ControllerSpec, DiskArray, DiskArrayBuilder, DiskSpec, IoEngine, Pacing,
};
use alphasort_stripefs::{StripedReader, StripedWriter, Volume};

/// Run a validated in-memory one-pass sort of `records` records on the
/// host; returns the phase stats.
pub fn host_sort(records: u64, cfg: &SortConfig) -> SortStats {
    let (input, cs) = generate(GenConfig::datamation(records, 0x5EED));
    let mut source = MemSource::new(input, 1_000_000);
    let mut sink = MemSink::new();
    let outcome = one_pass(&mut source, &mut sink, cfg).expect("sort failed");
    validate_records(sink.data(), cs).expect("sort output invalid");
    outcome.stats
}

/// Build a modeled (unpaced) array of `total` disks of `disk` spec,
/// `per_ctlr` behind each `ctlr`.
pub fn modeled_array(
    disk: DiskSpec,
    ctlr: ControllerSpec,
    per_ctlr: usize,
    total: usize,
) -> DiskArray {
    let mut builder = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory);
    let mut left = total;
    while left > 0 {
        let n = left.min(per_ctlr);
        builder = builder.controller(ctlr.clone(), disk.clone(), n);
        left -= n;
    }
    builder.build().expect("array build")
}

/// Measured-on-the-model stripe rates: write `megabytes` across the whole
/// array, read it back, and report (read MB/s, write MB/s) from the modeled
/// busy times — what Table 6 calls the "stripe read/write rate".
pub fn modeled_stripe_rates(array: &DiskArray, megabytes: usize) -> (f64, f64) {
    let engine = Arc::new(IoEngine::new(array.disks().to_vec()));
    let volume = Volume::new(Arc::clone(&engine));
    let bytes = megabytes * 1_000_000;
    let file = Arc::new(volume.create_across_all("rate-probe", 64 * 1024, bytes as u64));

    array.reset_stats();
    let mut w = StripedWriter::new(Arc::clone(&file));
    let chunk = vec![0u8; 1_000_000];
    for _ in 0..megabytes {
        w.push(&chunk).expect("probe write");
    }
    w.finish().expect("probe write");
    let wstats = array.stats();
    let write_mbps = wstats.bytes_written as f64 / 1e6 / wstats.modeled_elapsed().as_secs_f64();

    array.reset_stats();
    let mut r = StripedReader::new(file);
    while let Some(s) = r.next_stride() {
        s.expect("probe read");
    }
    let rstats = array.stats();
    let read_mbps = rstats.bytes_read as f64 / 1e6 / rstats.modeled_elapsed().as_secs_f64();
    (read_mbps, write_mbps)
}

/// The Table 6 "many-slow" array: 36 RZ26 on 9 SCSI controllers.
pub fn many_slow_array() -> DiskArray {
    modeled_array(catalog::rz26(), catalog::scsi_controller(), 4, 36)
}

/// The Table 6 "few-fast" array: 12 RZ28 on 4 plain SCSI controllers plus
/// 6 IPI drives on 3 Genroco controllers. The plain SCSI buses are what cap
/// the RZ28 group — the reason the paper's few-fast array measures 52 MB/s
/// despite 90 MB/s of nominal drive bandwidth.
pub fn few_fast_array() -> DiskArray {
    let mut builder = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory)
        .controller(catalog::scsi_controller(), catalog::rz28(), 3)
        .controller(catalog::scsi_controller(), catalog::rz28(), 3)
        .controller(catalog::scsi_controller(), catalog::rz28(), 3)
        .controller(catalog::scsi_controller(), catalog::rz28(), 3);
    for _ in 0..3 {
        builder = builder.controller(
            catalog::genroco_ipi_controller(),
            catalog::ipi_velocitor(),
            2,
        );
    }
    builder.build().expect("few-fast array")
}

/// Records for `megabytes` of Datamation data.
pub fn records_for_mb(megabytes: u64) -> u64 {
    megabytes * 1_000_000 / RECORD_LEN as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_sort_runs() {
        let st = host_sort(
            2_000,
            &SortConfig {
                run_records: 500,
                gather_batch: 200,
                ..Default::default()
            },
        );
        assert_eq!(st.records, 2_000);
    }

    #[test]
    fn table6_arrays_have_paper_shapes() {
        let slow = many_slow_array();
        assert_eq!(slow.width(), 36);
        assert_eq!(slow.controllers().len(), 9);
        let fast = few_fast_array();
        assert_eq!(fast.width(), 18);
        assert_eq!(fast.controllers().len(), 7);
    }

    #[test]
    fn modeled_rates_close_to_nominal() {
        let slow = many_slow_array();
        let (r, w) = modeled_stripe_rates(&slow, 20);
        // Table 6: 64 MB/s read, 49 MB/s write. Seek overhead shaves a bit.
        assert!((r - 64.0).abs() < 6.0, "read {r}");
        assert!((w - 49.0).abs() < 6.0, "write {w}");
    }
}
