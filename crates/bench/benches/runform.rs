//! Bench: QuickSort run formation vs replacement-selection (§4's 2.5:1
//! claim), across input distributions.

use std::hint::black_box;

use alphasort_bench::harness::BenchGroup;
use alphasort_core::rs::generate_runs;
use alphasort_core::runform::key_prefix_order;
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, Record, RECORD_LEN};

fn main() {
    let n = 100_000u64;
    let mut g = BenchGroup::new("quicksort_vs_rs");
    g.throughput_bytes(n * RECORD_LEN as u64);
    g.sample_size(10);
    for (label, dist) in [
        ("random", KeyDistribution::Random),
        ("sorted", KeyDistribution::Sorted),
        ("reverse", KeyDistribution::Reverse),
    ] {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 7,
            dist,
        });
        let records: Vec<Record> = records_of(&data).to_vec();
        g.bench(format!("quicksort_prefix/{label}"), || {
            black_box(key_prefix_order(&data))
        });
        g.bench(format!("replacement_selection/{label}"), || {
            black_box(generate_runs(&records, 25_000))
        });
    }
}
