//! Criterion bench: QuickSort run formation vs replacement-selection
//! (§4's 2.5:1 claim), across input distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use alphasort_core::rs::generate_runs;
use alphasort_core::runform::key_prefix_order;
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, Record, RECORD_LEN};

fn bench_quicksort_vs_replacement_selection(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("quicksort_vs_rs");
    g.throughput(Throughput::Bytes(n * RECORD_LEN as u64));
    g.sample_size(10);
    for (label, dist) in [
        ("random", KeyDistribution::Random),
        ("sorted", KeyDistribution::Sorted),
        ("reverse", KeyDistribution::Reverse),
    ] {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 7,
            dist,
        });
        let records: Vec<Record> = records_of(&data).to_vec();
        g.bench_with_input(
            BenchmarkId::new("quicksort_prefix", label),
            &data,
            |b, d| {
                b.iter(|| black_box(key_prefix_order(d)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("replacement_selection", label),
            &records,
            |b, r| {
                b.iter(|| black_box(generate_runs(r, 25_000)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_quicksort_vs_replacement_selection);
criterion_main!(benches);
