//! Bench: the merge phase — tournament merge of (key-prefix, pointer) runs,
//! the record gather, and the OVC-vs-plain merge ablation. The paper: "More
//! time is spent gathering the records than is consumed in creating, sorting
//! and merging the key-prefix/pointer pairs."

use std::hint::black_box;

use alphasort_bench::harness::BenchGroup;
use alphasort_core::gather::merge_gather_all;
use alphasort_core::merge::{MergedPtr, RunMerger};
use alphasort_core::ovc::{plain_merge_bytes, OvcMerger};
use alphasort_core::runform::{form_run, Representation, SortedRun};
use alphasort_dmgen::{generate, records_of, GenConfig, KeyDistribution, Record, RECORD_LEN};

fn make_runs(n: u64, per_run: usize) -> Vec<SortedRun> {
    let (data, _) = generate(GenConfig::datamation(n, 3));
    data.chunks(per_run * RECORD_LEN)
        .map(|c| form_run(c.to_vec(), Representation::KeyPrefix))
        .collect()
}

fn bench_merge_and_gather() {
    let n = 100_000u64;
    let runs = make_runs(n, 10_000); // 10 runs, the paper's "typically ten"
    let mut g = BenchGroup::new("merge_phase");
    g.throughput_bytes(n * RECORD_LEN as u64);
    g.sample_size(10);

    g.bench("merge_only", || {
        let ptrs: Vec<MergedPtr> = RunMerger::new(&runs).collect();
        black_box(ptrs)
    });
    g.bench("merge_plus_gather", || black_box(merge_gather_all(&runs)));
}

fn bench_merge_fanin() {
    // Fan-in sweep: "in a one-pass sort there are typically between ten and
    // one hundred runs".
    let n = 100_000u64;
    let mut g = BenchGroup::new("merge_fanin");
    g.sample_size(10);
    for fanin in [2usize, 10, 100] {
        let runs = make_runs(n, (n as usize).div_ceil(fanin));
        g.bench(format!("{fanin}"), || {
            let ptrs: Vec<MergedPtr> = RunMerger::new(&runs).collect();
            black_box(ptrs)
        });
    }
}

fn bench_partitioned_merge() {
    // Serial tournament vs the partitioned merge at 2/4/8 ranges: same
    // output bytes (the oracle enforces it), the question is wall clock.
    use alphasort_core::gather::gather_into;
    use alphasort_core::pmerge::{plan_mem_partitions, SAMPLES_PER_RANGE};

    let n = 200_000u64;
    let runs = make_runs(n, 20_000);
    let mut g = BenchGroup::new("partitioned_merge");
    g.throughput_bytes(n * RECORD_LEN as u64);
    g.sample_size(10);

    g.bench("serial", || black_box(merge_gather_all(&runs)));
    for ranges in [2usize, 4, 8] {
        g.bench(format!("ranges/{ranges}"), || {
            let plan = plan_mem_partitions(&runs, ranges, SAMPLES_PER_RANGE);
            let outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .bounds
                    .iter()
                    .map(|row| {
                        let runs = &runs;
                        scope.spawn(move || {
                            let bounds: Vec<(u32, u32)> =
                                row.iter().map(|&(s, e)| (s as u32, e as u32)).collect();
                            let ptrs: Vec<MergedPtr> =
                                RunMerger::with_bounds(runs, &bounds).collect();
                            let mut out = Vec::with_capacity(ptrs.len() * RECORD_LEN);
                            gather_into(runs, &ptrs, &mut out);
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("range worker"))
                    .collect::<Vec<_>>()
            });
            black_box(outputs.concat())
        });
    }
}

fn bench_ovc() {
    let n = 100_000u64;
    let mut g = BenchGroup::new("ovc_vs_plain_merge");
    g.sample_size(10);
    for (label, dist) in [
        ("random", KeyDistribution::Random),
        ("common-prefix", KeyDistribution::CommonPrefix { shared: 6 }),
    ] {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 5,
            dist,
        });
        let runs: Vec<Vec<Record>> = records_of(&data)
            .chunks(10_000)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_by_key(|a| a.key);
                v
            })
            .collect();
        g.bench(format!("plain/{label}"), || {
            let refs: Vec<&[Record]> = runs.iter().map(|r| r.as_slice()).collect();
            black_box(plain_merge_bytes(refs))
        });
        g.bench(format!("ovc/{label}"), || {
            let refs: Vec<&[Record]> = runs.iter().map(|r| r.as_slice()).collect();
            let mut m = OvcMerger::new(refs);
            let mut count = 0u64;
            while m.next_record().is_some() {
                count += 1;
            }
            black_box(count)
        });
    }
}

fn main() {
    bench_merge_and_gather();
    bench_merge_fanin();
    bench_partitioned_merge();
    bench_ovc();
}
