//! Bench: the striping layer's host-side overhead — sequential striped
//! read/write throughput over unconstrained in-memory disks as the stripe
//! widens (the software cost of striping, independent of device speed), and
//! stripe geometry planning.

use std::hint::black_box;
use std::sync::Arc;

use alphasort_bench::harness::BenchGroup;
use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_stripefs::{Member, StripeDef, StripedReader, StripedWriter, Volume};

fn volume(width: usize) -> Volume {
    let disks = (0..width)
        .map(|i| {
            SimDisk::new(
                format!("d{i}"),
                catalog::uncapped(),
                Arc::new(MemStorage::new()),
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    Volume::new(Arc::new(IoEngine::new(disks)))
}

fn bench_striped_io() {
    let bytes = 8_000_000usize;
    let mut g = BenchGroup::new("striped_io");
    g.throughput_bytes(bytes as u64);
    g.sample_size(10);
    for width in [1usize, 4, 16] {
        let v = volume(width);
        let chunk = vec![0u8; 1 << 20];
        let mut file_no = 0u64;
        g.bench(format!("write/{width}"), || {
            file_no += 1;
            let f = Arc::new(v.create_across_all(format!("f{file_no}"), 64 * 1024, bytes as u64));
            let mut wtr = StripedWriter::new(f);
            let mut left = bytes;
            while left > 0 {
                let n = left.min(chunk.len());
                wtr.push(&chunk[..n]).unwrap();
                left -= n;
            }
            black_box(wtr.finish().unwrap())
        });

        let v = volume(width);
        let f = Arc::new(v.create_across_all("data", 64 * 1024, bytes as u64));
        let mut left = bytes;
        let mut wtr = StripedWriter::new(Arc::clone(&f));
        while left > 0 {
            let n = left.min(chunk.len());
            wtr.push(&chunk[..n]).unwrap();
            left -= n;
        }
        wtr.finish().unwrap();
        g.bench(format!("read/{width}"), || {
            let mut r = StripedReader::new(Arc::clone(&f));
            let mut total = 0usize;
            while let Some(s) = r.next_stride() {
                total += s.unwrap().len();
            }
            black_box(total)
        });
    }
}

fn bench_geometry() {
    let def = StripeDef::new(
        "g",
        64 * 1024,
        (0..16).map(|i| Member { disk: i, base: 0 }).collect(),
    );
    let mut g = BenchGroup::new("stripe_geometry");
    g.sample_size(10);
    g.bench("plan_1MB_range", || black_box(def.plan(123_456, 1 << 20)));
    let mut off = 0u64;
    g.bench("locate_x1000", || {
        for _ in 0..1000 {
            off = (off + 37_123) % (1 << 30);
            black_box(def.locate(off));
        }
    });
}

fn main() {
    bench_striped_io();
    bench_geometry();
}
