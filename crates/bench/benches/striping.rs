//! Criterion bench: the striping layer's host-side overhead — sequential
//! striped read/write throughput over unconstrained in-memory disks as the
//! stripe widens (the software cost of striping, independent of device
//! speed), and stripe geometry planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_stripefs::{Member, StripeDef, StripedReader, StripedWriter, Volume};

fn volume(width: usize) -> Volume {
    let disks = (0..width)
        .map(|i| {
            SimDisk::new(
                format!("d{i}"),
                catalog::uncapped(),
                Arc::new(MemStorage::new()),
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    Volume::new(Arc::new(IoEngine::new(disks)))
}

fn bench_striped_io(c: &mut Criterion) {
    let bytes = 8_000_000usize;
    let mut g = c.benchmark_group("striped_io");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    for width in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("write", width), &width, |b, &w| {
            let v = volume(w);
            let chunk = vec![0u8; 1 << 20];
            let mut file_no = 0;
            b.iter(|| {
                file_no += 1;
                let f =
                    Arc::new(v.create_across_all(format!("f{file_no}"), 64 * 1024, bytes as u64));
                let mut wtr = StripedWriter::new(f);
                let mut left = bytes;
                while left > 0 {
                    let n = left.min(chunk.len());
                    wtr.push(&chunk[..n]).unwrap();
                    left -= n;
                }
                black_box(wtr.finish().unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("read", width), &width, |b, &w| {
            let v = volume(w);
            let f = Arc::new(v.create_across_all("data", 64 * 1024, bytes as u64));
            let chunk = vec![0u8; 1 << 20];
            let mut left = bytes;
            let mut wtr = StripedWriter::new(Arc::clone(&f));
            while left > 0 {
                let n = left.min(chunk.len());
                wtr.push(&chunk[..n]).unwrap();
                left -= n;
            }
            wtr.finish().unwrap();
            b.iter(|| {
                let mut r = StripedReader::new(Arc::clone(&f));
                let mut total = 0usize;
                while let Some(s) = r.next_stride() {
                    total += s.unwrap().len();
                }
                black_box(total)
            });
        });
    }
    g.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let def = StripeDef::new(
        "g",
        64 * 1024,
        (0..16).map(|i| Member { disk: i, base: 0 }).collect(),
    );
    let mut g = c.benchmark_group("stripe_geometry");
    g.bench_function("plan_1MB_range", |b| {
        b.iter(|| black_box(def.plan(123_456, 1 << 20)));
    });
    g.bench_function("locate", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 37_123) % (1 << 30);
            black_box(def.locate(off))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_striped_io, bench_geometry);
criterion_main!(benches);
