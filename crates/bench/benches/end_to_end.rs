//! Bench: the whole external sort — one-pass vs two-pass, worker scaling,
//! and the ablation of AlphaSort's design choices (representation, overlap
//! depth).

use std::hint::black_box;

use alphasort_bench::harness::BenchGroup;
use alphasort_core::driver::{one_pass, two_pass, MemScratch};
use alphasort_core::io::{MemSink, MemSource};
use alphasort_core::runform::Representation;
use alphasort_core::SortConfig;
use alphasort_dmgen::{generate, GenConfig, RECORD_LEN};

const N: u64 = 200_000;

fn data() -> Vec<u8> {
    generate(GenConfig::datamation(N, 9)).0
}

fn bench_drivers() {
    let input = data();
    let mut g = BenchGroup::new("external_sort");
    g.throughput_bytes(N * RECORD_LEN as u64);
    g.sample_size(10);

    g.bench("one_pass", || {
        let mut src = MemSource::new(input.clone(), 1_000_000);
        let mut sink = MemSink::new();
        let cfg = SortConfig {
            run_records: 100_000,
            gather_batch: 10_000,
            ..Default::default()
        };
        black_box(one_pass(&mut src, &mut sink, &cfg).unwrap())
    });
    g.bench("two_pass", || {
        let mut src = MemSource::new(input.clone(), 1_000_000);
        let mut sink = MemSink::new();
        let mut scratch = MemScratch::new(10_000 * RECORD_LEN);
        let cfg = SortConfig {
            run_records: 50_000,
            gather_batch: 10_000,
            ..Default::default()
        };
        black_box(two_pass(&mut src, &mut sink, &mut scratch, &cfg).unwrap())
    });
}

fn bench_worker_scaling() {
    // §5's shared-memory speedup: the same sort with 0, 1, 3 workers.
    let input = data();
    let mut g = BenchGroup::new("worker_scaling");
    g.throughput_bytes(N * RECORD_LEN as u64);
    g.sample_size(10);
    for workers in [0usize, 1, 3] {
        g.bench(format!("{workers}"), || {
            let mut src = MemSource::new(input.clone(), 1_000_000);
            let mut sink = MemSink::new();
            let cfg = SortConfig {
                run_records: 25_000,
                gather_batch: 10_000,
                workers,
                ..Default::default()
            };
            black_box(one_pass(&mut src, &mut sink, &cfg).unwrap())
        });
    }
}

fn bench_representation_ablation() {
    // The end-to-end cost of the §4 representation choice.
    let input = data();
    let mut g = BenchGroup::new("e2e_representation");
    g.throughput_bytes(N * RECORD_LEN as u64);
    g.sample_size(10);
    for rep in Representation::ALL {
        g.bench(rep.name(), || {
            let mut src = MemSource::new(input.clone(), 1_000_000);
            let mut sink = MemSink::new();
            let cfg = SortConfig {
                run_records: 100_000,
                gather_batch: 10_000,
                representation: rep,
                ..Default::default()
            };
            black_box(one_pass(&mut src, &mut sink, &cfg).unwrap())
        });
    }
}

fn bench_against_partition_baseline() {
    // AlphaSort's pipeline vs the shared-nothing design it displaced (§2).
    use alphasort_core::baseline::{partition_sort, PartitionSortConfig};
    let input = data();
    let mut g = BenchGroup::new("vs_partition_baseline");
    g.throughput_bytes(N * RECORD_LEN as u64);
    g.sample_size(10);
    g.bench("alphasort_3_workers", || {
        let mut src = MemSource::new(input.clone(), 1_000_000);
        let mut sink = MemSink::new();
        let cfg = SortConfig {
            run_records: 50_000,
            gather_batch: 10_000,
            workers: 3,
            ..Default::default()
        };
        black_box(one_pass(&mut src, &mut sink, &cfg).unwrap())
    });
    for nodes in [4usize, 8] {
        let cfg = PartitionSortConfig {
            nodes,
            samples_per_node: 256,
            ..Default::default()
        };
        g.bench(format!("partition_sort/{nodes}"), || {
            black_box(partition_sort(&input, &cfg))
        });
    }
}

fn main() {
    bench_drivers();
    bench_worker_scaling();
    bench_representation_ablation();
    bench_against_partition_baseline();
}
