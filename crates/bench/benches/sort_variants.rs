//! Bench for §4's representation comparison: CPU time to form one sorted
//! run under each sort-array representation, plus the footnote's 256-bucket
//! partition sort.

use std::hint::black_box;

use alphasort_bench::harness::BenchGroup;
use alphasort_core::partition::partition_order;
use alphasort_core::runform::{form_run, Representation};
use alphasort_dmgen::{generate, GenConfig, KeyDistribution, RECORD_LEN};

fn bench_representations() {
    let n = 100_000u64; // the paper's run size
    let (data, _) = generate(GenConfig::datamation(n, 1));

    let mut g = BenchGroup::new("run_formation");
    g.throughput_bytes(n * RECORD_LEN as u64);
    g.sample_size(10);
    for rep in Representation::ALL {
        g.bench(format!("quicksort/{}", rep.name()), || {
            black_box(form_run(data.clone(), rep))
        });
    }
    g.bench("partition/256-bucket", || black_box(partition_order(&data)));
}

fn bench_degenerate_prefix() {
    // §4's risk case: a shared prefix forces every compare through to the
    // full keys, degrading key-prefix sort toward pointer sort.
    let n = 100_000u64;
    let mut g = BenchGroup::new("prefix_degeneracy");
    g.sample_size(10);
    for (label, dist) in [
        ("random", KeyDistribution::Random),
        (
            "shared-8-byte-prefix",
            KeyDistribution::CommonPrefix { shared: 8 },
        ),
    ] {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 2,
            dist,
        });
        g.bench(format!("key_prefix/{label}"), || {
            black_box(form_run(data.clone(), Representation::KeyPrefix))
        });
    }
}

fn main() {
    bench_representations();
    bench_degenerate_prefix();
}
