//! Criterion bench for §4's representation comparison: CPU time to form one
//! sorted run under each sort-array representation, plus the footnote's
//! 256-bucket partition sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use alphasort_core::partition::partition_order;
use alphasort_core::runform::{form_run, Representation};
use alphasort_dmgen::{generate, GenConfig, KeyDistribution, RECORD_LEN};

fn bench_representations(c: &mut Criterion) {
    let n = 100_000u64; // the paper's run size
    let (data, _) = generate(GenConfig::datamation(n, 1));

    let mut g = c.benchmark_group("run_formation");
    g.throughput(Throughput::Bytes(n * RECORD_LEN as u64));
    g.sample_size(10);
    for rep in Representation::ALL {
        g.bench_with_input(BenchmarkId::new("quicksort", rep.name()), &data, |b, d| {
            b.iter(|| black_box(form_run(d.clone(), rep)));
        });
    }
    g.bench_with_input(
        BenchmarkId::new("partition", "256-bucket"),
        &data,
        |b, d| {
            b.iter(|| black_box(partition_order(d)));
        },
    );
    g.finish();
}

fn bench_degenerate_prefix(c: &mut Criterion) {
    // §4's risk case: a shared prefix forces every compare through to the
    // full keys, degrading key-prefix sort toward pointer sort.
    let n = 100_000u64;
    let mut g = c.benchmark_group("prefix_degeneracy");
    g.sample_size(10);
    for (label, dist) in [
        ("random", KeyDistribution::Random),
        (
            "shared-8-byte-prefix",
            KeyDistribution::CommonPrefix { shared: 8 },
        ),
    ] {
        let (data, _) = generate(GenConfig {
            records: n,
            seed: 2,
            dist,
        });
        g.bench_with_input(BenchmarkId::new("key_prefix", label), &data, |b, d| {
            b.iter(|| black_box(form_run(d.clone(), Representation::KeyPrefix)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_representations, bench_degenerate_prefix);
criterion_main!(benches);
