//! A tiny JSON value model with a recursive-descent parser and a writer.
//!
//! The workspace persists a handful of small documents — stripe descriptors,
//! device specs, machine tables — and must build offline with std only, so
//! this crate supplies exactly the JSON surface those documents need: the
//! seven value kinds, faithful integer round-trips (`Int` is kept apart from
//! `Float` so 64-bit byte offsets survive), string escapes, and pretty or
//! compact emission. It is not a general serde replacement: no streaming, no
//! borrowed parsing, duplicate object keys resolve to the first occurrence.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that lexed as an integer and fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse or schema error, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Build an error from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact single-line emission.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty emission with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, fields.len(), '{', '}', |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }

    /// Field lookup on an object (first match); `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (`Int` converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required string field of an object.
    pub fn field_str(&self, key: &str) -> Result<&str, JsonError> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new(format!("missing string field `{key}`")))
    }

    /// Required numeric field of an object, as `f64`.
    pub fn field_f64(&self, key: &str) -> Result<f64, JsonError> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| JsonError::new(format!("missing number field `{key}`")))
    }

    /// Required non-negative integer field of an object.
    pub fn field_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::new(format!("missing integer field `{key}`")))
    }

    /// Required array field of an object.
    pub fn field_arr(&self, key: &str) -> Result<&[Json], JsonError> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new(format!("missing array field `{key}`")))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n)
            .map(Json::Int)
            .unwrap_or(Json::Float(n as f64))
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display; integral floats gain a ".0" so
        // they re-parse as Float and compare equal through as_f64 either way.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; descriptors never contain them.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: descriptors are ASCII in
                            // practice, but decode pairs correctly anyway.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("1.5", Json::Float(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.dump()).unwrap(), value);
        }
    }

    #[test]
    fn large_u64_offsets_survive() {
        let n = u64::MAX / 2; // fits i64
        let v = Json::from(n);
        assert_eq!(Json::parse(&v.dump()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.25f64, 1.4, 4.5e9, -0.0031, 5.0] {
            let v = Json::Float(x);
            assert_eq!(Json::parse(&v.dump()).unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn string_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode é";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.dump()).unwrap().as_str(), Some(s));
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn nested_documents_roundtrip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::from("run-3")),
            ("chunk".into(), Json::from(65536u64)),
            (
                "members".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("disk".into(), Json::from(0u64)),
                        ("base".into(), Json::from(1048576u64)),
                    ]),
                    Json::Obj(vec![
                        ("disk".into(), Json::from(1u64)),
                        ("base".into(), Json::from(0u64)),
                    ]),
                ]),
            ),
            (
                "rates".into(),
                Json::Arr(vec![Json::Float(4.5), Json::Float(3.5)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&doc.dump()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.dump_pretty()).unwrap(), doc);
    }

    #[test]
    fn field_accessors() {
        let doc = Json::parse(r#"{"a": "x", "n": 3, "f": 2.5, "l": [1, 2]}"#).unwrap();
        assert_eq!(doc.field_str("a").unwrap(), "x");
        assert_eq!(doc.field_u64("n").unwrap(), 3);
        assert_eq!(doc.field_f64("n").unwrap(), 3.0);
        assert_eq!(doc.field_f64("f").unwrap(), 2.5);
        assert_eq!(doc.field_arr("l").unwrap().len(), 2);
        assert!(doc.field_str("missing").is_err());
        assert!(doc.field_u64("a").is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
            "[1, ]",
            "nulll",
            "--1",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::parse(" \n{ \"a\" :\t[ 1 ,\r\n 2 ] } \n").unwrap();
        assert_eq!(doc.field_arr("a").unwrap(), &[Json::Int(1), Json::Int(2)]);
    }
}
