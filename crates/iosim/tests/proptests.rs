//! Property tests for the disk simulator: storage semantics, accounting
//! invariants, and fault-plan behaviour under arbitrary operation mixes.

use std::sync::Arc;

use alphasort_iosim::{
    catalog, FaultPlan, FaultyStorage, IoEngine, MemStorage, Pacing, SimDisk, Storage,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Read { offset: u64, len: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4_096, proptest::collection::vec(any::<u8>(), 1..128))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0u64..4_096, 1usize..128).prop_map(|(offset, len)| Op::Read { offset, len }),
    ]
}

proptest! {
    /// MemStorage behaves like a sparse byte array with zero fill.
    #[test]
    fn mem_storage_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let storage = MemStorage::new();
        let mut shadow = vec![0u8; 8_192];
        let mut high_water = 0usize;
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    storage.write_at(*offset, data).unwrap();
                    let off = *offset as usize;
                    shadow[off..off + data.len()].copy_from_slice(data);
                    high_water = high_water.max(off + data.len());
                }
                Op::Read { offset, len } => {
                    let mut buf = vec![0xFFu8; *len];
                    storage.read_at(*offset, &mut buf).unwrap();
                    let off = *offset as usize;
                    prop_assert_eq!(&buf[..], &shadow[off..off + len]);
                }
            }
            prop_assert_eq!(storage.len() as usize, high_water);
        }
    }

    /// Disk stats account every operation and byte exactly.
    #[test]
    fn disk_stats_account_everything(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let disk = SimDisk::new(
            "p0",
            catalog::rz28(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let (mut reads, mut writes, mut br, mut bw) = (0u64, 0u64, 0u64, 0u64);
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    disk.write(*offset, data).unwrap();
                    writes += 1;
                    bw += data.len() as u64;
                }
                Op::Read { offset, len } => {
                    disk.read(*offset, *len).unwrap();
                    reads += 1;
                    br += *len as u64;
                }
            }
        }
        let st = disk.stats();
        prop_assert_eq!(st.reads, reads);
        prop_assert_eq!(st.writes, writes);
        prop_assert_eq!(st.bytes_read, br);
        prop_assert_eq!(st.bytes_written, bw);
        prop_assert!(st.seeks <= reads + writes);
        // Modeled busy time is monotone in work done.
        prop_assert!(st.busy_ns > 0 || (br + bw == 0));
    }

    /// Async engine results equal synchronous execution of the same ops,
    /// per disk (FIFO order per disk is guaranteed).
    #[test]
    fn engine_matches_sync_disk(ops in proptest::collection::vec(arb_op(), 1..40)) {
        // Sync reference.
        let sync_disk = SimDisk::new(
            "s",
            catalog::uncapped(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let mut expected = Vec::new();
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    sync_disk.write(*offset, data).unwrap();
                }
                Op::Read { offset, len } => {
                    expected.push(sync_disk.read(*offset, *len).unwrap());
                }
            }
        }
        // Async run.
        let async_disk = SimDisk::new(
            "a",
            catalog::uncapped(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let engine = IoEngine::new(vec![async_disk]);
        let mut handles = Vec::new();
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    engine.write(0, *offset, data.clone()).wait().unwrap();
                }
                Op::Read { offset, len } => {
                    handles.push(engine.read(0, *offset, *len));
                }
            }
        }
        let got: Vec<Vec<u8>> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    /// A fault plan fires each injected fault exactly once, at the right
    /// operation index, and everything else passes through untouched.
    #[test]
    fn fault_plan_fires_exactly_once(
        fail_at in 0u64..20,
        total_reads in 21u64..40,
    ) {
        let storage = FaultyStorage::new(
            Arc::new(MemStorage::new()),
            FaultPlan::new().fail_read(fail_at, std::io::ErrorKind::TimedOut),
        );
        storage.write_at(0, &[7u8; 64]).unwrap();
        let mut failures = Vec::new();
        for i in 0..total_reads {
            let mut buf = [0u8; 8];
            if storage.read_at(0, &mut buf).is_err() {
                failures.push(i);
            } else {
                prop_assert_eq!(buf, [7u8; 8]);
            }
        }
        prop_assert_eq!(failures, vec![fail_at]);
    }
}
