//! Property tests for the disk simulator: storage semantics, accounting
//! invariants, and fault-plan behaviour under arbitrary operation mixes.
//! Cases are driven by a seeded [`SplitMix64`] so every run is reproducible.

use std::sync::Arc;

use alphasort_dmgen::SplitMix64;
use alphasort_iosim::{
    catalog, FaultPlan, FaultyStorage, IoEngine, MemStorage, Pacing, SimDisk, Storage,
};

#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Read { offset: u64, len: usize },
}

fn any_op(r: &mut SplitMix64) -> Op {
    let offset = r.next_below(4_096);
    if r.next_below(2) == 0 {
        let mut data = vec![0u8; 1 + r.next_below(127) as usize];
        r.fill_bytes(&mut data);
        Op::Write { offset, data }
    } else {
        Op::Read {
            offset,
            len: 1 + r.next_below(127) as usize,
        }
    }
}

fn any_ops(r: &mut SplitMix64, max: u64) -> Vec<Op> {
    let n = 1 + r.next_below(max - 1);
    (0..n).map(|_| any_op(r)).collect()
}

/// MemStorage behaves like a sparse byte array with zero fill.
#[test]
fn mem_storage_matches_shadow_model() {
    let mut r = SplitMix64::new(0xF1);
    for case in 0..128 {
        let ops = any_ops(&mut r, 60);
        let storage = MemStorage::new();
        let mut shadow = vec![0u8; 8_192];
        let mut high_water = 0usize;
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    storage.write_at(*offset, data).unwrap();
                    let off = *offset as usize;
                    shadow[off..off + data.len()].copy_from_slice(data);
                    high_water = high_water.max(off + data.len());
                }
                Op::Read { offset, len } => {
                    let mut buf = vec![0xFFu8; *len];
                    storage.read_at(*offset, &mut buf).unwrap();
                    let off = *offset as usize;
                    assert_eq!(&buf[..], &shadow[off..off + len], "case {case}");
                }
            }
            assert_eq!(storage.len() as usize, high_water, "case {case}");
        }
    }
}

/// Disk stats account every operation and byte exactly.
#[test]
fn disk_stats_account_everything() {
    let mut r = SplitMix64::new(0xF2);
    for case in 0..128 {
        let ops = any_ops(&mut r, 60);
        let disk = SimDisk::new(
            "p0",
            catalog::rz28(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let (mut reads, mut writes, mut br, mut bw) = (0u64, 0u64, 0u64, 0u64);
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    disk.write(*offset, data).unwrap();
                    writes += 1;
                    bw += data.len() as u64;
                }
                Op::Read { offset, len } => {
                    disk.read(*offset, *len).unwrap();
                    reads += 1;
                    br += *len as u64;
                }
            }
        }
        let st = disk.stats();
        assert_eq!(st.reads, reads, "case {case}");
        assert_eq!(st.writes, writes, "case {case}");
        assert_eq!(st.bytes_read, br, "case {case}");
        assert_eq!(st.bytes_written, bw, "case {case}");
        assert!(st.seeks <= reads + writes, "case {case}");
        // Modeled busy time is monotone in work done.
        assert!(st.busy_ns > 0 || (br + bw == 0), "case {case}");
    }
}

/// Async engine results equal synchronous execution of the same ops, per
/// disk (FIFO order per disk is guaranteed).
#[test]
fn engine_matches_sync_disk() {
    let mut r = SplitMix64::new(0xF3);
    for case in 0..128 {
        let ops = any_ops(&mut r, 40);
        // Sync reference.
        let sync_disk = SimDisk::new(
            "s",
            catalog::uncapped(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let mut expected = Vec::new();
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    sync_disk.write(*offset, data).unwrap();
                }
                Op::Read { offset, len } => {
                    expected.push(sync_disk.read(*offset, *len).unwrap());
                }
            }
        }
        // Async run.
        let async_disk = SimDisk::new(
            "a",
            catalog::uncapped(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            None,
        );
        let engine = IoEngine::new(vec![async_disk]);
        let mut handles = Vec::new();
        for op in &ops {
            match op {
                Op::Write { offset, data } => {
                    engine.write(0, *offset, data.clone()).wait().unwrap();
                }
                Op::Read { offset, len } => {
                    handles.push(engine.read(0, *offset, *len));
                }
            }
        }
        let got: Vec<Vec<u8>> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        assert_eq!(got, expected, "case {case}");
    }
}

/// A fault plan fires each injected fault exactly once, at the right
/// operation index, and everything else passes through untouched.
#[test]
fn fault_plan_fires_exactly_once() {
    let mut r = SplitMix64::new(0xF4);
    for case in 0..64 {
        let fail_at = r.next_below(20);
        let total_reads = 21 + r.next_below(19);
        let storage = FaultyStorage::new(
            Arc::new(MemStorage::new()),
            FaultPlan::new().fail_read(fail_at, std::io::ErrorKind::TimedOut),
        );
        storage.write_at(0, &[7u8; 64]).unwrap();
        let mut failures = Vec::new();
        for i in 0..total_reads {
            let mut buf = [0u8; 8];
            if storage.read_at(0, &mut buf).is_err() {
                failures.push(i);
            } else {
                assert_eq!(buf, [7u8; 8], "case {case}");
            }
        }
        assert_eq!(failures, vec![fail_at], "case {case}");
    }
}
