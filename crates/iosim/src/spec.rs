//! Device specifications: bandwidth, seek, capacity, 1993 price.

use alphasort_minijson::{Json, JsonError};

/// Characteristics of one disk drive.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskSpec {
    /// Marketing name, e.g. `"RZ26"`.
    pub name: String,
    /// Sequential read bandwidth, MB/s (decimal megabytes).
    pub read_mbps: f64,
    /// Sequential write bandwidth, MB/s.
    pub write_mbps: f64,
    /// Average seek + rotational delay charged when an operation is not
    /// sequential with the previous one, milliseconds.
    pub seek_ms: f64,
    /// Formatted capacity in gigabytes.
    pub capacity_gb: f64,
    /// 1993 list price in dollars, drive only.
    pub price_dollars: f64,
}

impl DiskSpec {
    /// Nanoseconds to transfer `bytes` at this disk's read rate.
    pub fn read_ns(&self, bytes: u64) -> u64 {
        transfer_ns(bytes, self.read_mbps)
    }

    /// Nanoseconds to transfer `bytes` at this disk's write rate.
    pub fn write_ns(&self, bytes: u64) -> u64 {
        transfer_ns(bytes, self.write_mbps)
    }

    /// Seek penalty in nanoseconds.
    pub fn seek_ns(&self) -> u64 {
        (self.seek_ms * 1e6) as u64
    }

    /// The same drive with write cache enabled (WCE): the controller
    /// acknowledges writes at streaming (read) speed. The paper's §6
    /// footnote: "We did not enable WCE because commercial systems demand
    /// disk integrity. If WCE were used, 20% fewer discs would be needed."
    pub fn with_wce(mut self) -> DiskSpec {
        self.name = format!("{}+WCE", self.name);
        self.write_mbps = self.read_mbps;
        self
    }

    /// JSON form, for host-side spec files.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("read_mbps".into(), Json::from(self.read_mbps)),
            ("write_mbps".into(), Json::from(self.write_mbps)),
            ("seek_ms".into(), Json::from(self.seek_ms)),
            ("capacity_gb".into(), Json::from(self.capacity_gb)),
            ("price_dollars".into(), Json::from(self.price_dollars)),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<DiskSpec, JsonError> {
        Ok(DiskSpec {
            name: v.field_str("name")?.to_string(),
            read_mbps: v.field_f64("read_mbps")?,
            write_mbps: v.field_f64("write_mbps")?,
            seek_ms: v.field_f64("seek_ms")?,
            capacity_gb: v.field_f64("capacity_gb")?,
            price_dollars: v.field_f64("price_dollars")?,
        })
    }
}

/// Characteristics of one controller (host adapter / bus).
///
/// Disks attach to a controller; the controller's bandwidth caps the sum of
/// its disks' transfer rates. "Bottlenecks appear when a controller
/// saturates" (§6) is exactly this cap binding before the per-disk rates do.
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerSpec {
    /// Marketing name, e.g. `"fast-SCSI"`.
    pub name: String,
    /// Aggregate bandwidth across all attached disks, MB/s.
    pub bandwidth_mbps: f64,
    /// 1993 list price in dollars.
    pub price_dollars: f64,
}

impl ControllerSpec {
    /// Nanoseconds for `bytes` to cross this controller.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        transfer_ns(bytes, self.bandwidth_mbps)
    }

    /// JSON form, for host-side spec files.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::from(self.name.as_str())),
            ("bandwidth_mbps".into(), Json::from(self.bandwidth_mbps)),
            ("price_dollars".into(), Json::from(self.price_dollars)),
        ])
    }

    /// Rebuild from the JSON form.
    pub fn from_json(v: &Json) -> Result<ControllerSpec, JsonError> {
        Ok(ControllerSpec {
            name: v.field_str("name")?.to_string(),
            bandwidth_mbps: v.field_f64("bandwidth_mbps")?,
            price_dollars: v.field_f64("price_dollars")?,
        })
    }
}

/// Nanoseconds to move `bytes` at `mbps` decimal megabytes per second.
pub(crate) fn transfer_ns(bytes: u64, mbps: f64) -> u64 {
    if mbps <= 0.0 {
        return 0;
    }
    (bytes as f64 / (mbps * 1e6) * 1e9) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskSpec {
        DiskSpec {
            name: "test".into(),
            read_mbps: 4.0,
            write_mbps: 2.0,
            seek_ms: 10.0,
            capacity_gb: 1.0,
            price_dollars: 2000.0,
        }
    }

    #[test]
    fn transfer_times_scale_with_bandwidth() {
        let d = disk();
        // 4 MB at 4 MB/s = 1 s.
        assert_eq!(d.read_ns(4_000_000), 1_000_000_000);
        // Same bytes at half the write rate take twice as long.
        assert_eq!(d.write_ns(4_000_000), 2_000_000_000);
    }

    #[test]
    fn seek_converts_ms_to_ns() {
        assert_eq!(disk().seek_ns(), 10_000_000);
    }

    #[test]
    fn zero_bandwidth_means_free_transfer() {
        // Uncapped devices are expressed as bandwidth 0 = "no modeled cost".
        assert_eq!(transfer_ns(1_000_000, 0.0), 0);
    }

    #[test]
    fn wce_writes_at_read_speed() {
        let d = disk().with_wce();
        assert_eq!(d.write_mbps, d.read_mbps);
        assert!(d.name.ends_with("+WCE"));
        // Same bytes now cost read-rate time.
        assert_eq!(d.write_ns(4_000_000), d.read_ns(4_000_000));
    }

    #[test]
    fn controller_transfer() {
        let c = ControllerSpec {
            name: "c".into(),
            bandwidth_mbps: 10.0,
            price_dollars: 1000.0,
        };
        assert_eq!(c.transfer_ns(10_000_000), 1_000_000_000);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let d = disk();
        let json = d.to_json().dump();
        let d2 = DiskSpec::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(d, d2);

        let c = ControllerSpec {
            name: "c".into(),
            bandwidth_mbps: 10.0,
            price_dollars: 1000.0,
        };
        let json = c.to_json().dump_pretty();
        let c2 = ControllerSpec::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(c, c2);
    }
}
