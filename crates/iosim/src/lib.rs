//! Simulated disk arrays with asynchronous IO.
//!
//! The AlphaSort paper's IO story depends on 1993 device characteristics: a
//! commodity SCSI disk that reads at ~4.5 MB/s and writes at ~3.5 MB/s, so a
//! 100 MB sort on one disk is stuck behind a *one-minute barrier* (§6), and
//! striping across many such disks buys near-linear bandwidth until a
//! controller saturates. A modern host device is thousands of times faster,
//! which would make every one of those effects invisible. This crate restores
//! the paper's regime:
//!
//! * [`DiskSpec`]/[`ControllerSpec`] describe devices by bandwidth, seek
//!   time, capacity and 1993 list price; [`catalog`] has the paper's disks
//!   (RZ26, RZ28, IPI Velocitor) and controllers (SCSI, fast SCSI, Genroco).
//! * [`SimDisk`] executes reads/writes against a memory or temp-file backing
//!   store, *models* each operation's duration (seek + transfer, gated by
//!   both the disk and its controller), and can optionally *pace* execution
//!   in real time so a simulated RZ26 really does deliver 1.8 MB/s.
//! * [`IoEngine`] provides asynchronous submission with per-disk IO threads
//!   and completion handles — the same NoWait-QIO pattern AlphaSort uses on
//!   OpenVMS to overlap IO with sorting.
//! * [`fault`] wraps a backing store with programmable failures for
//!   robustness testing.
//!
//! Modeled time vs. paced time: every operation always accrues *modeled* busy
//! time on its disk and controller (deterministic, independent of the host).
//! With [`Pacing::RealTime`] the disk additionally sleeps so wall-clock
//! throughput matches the model — used when an experiment needs genuine
//! overlap behaviour rather than analytic numbers.
//!
//! ```
//! use std::sync::Arc;
//! use alphasort_iosim::{catalog, MemStorage, Pacing, SimDisk};
//!
//! // A simulated RZ26: writes run at host speed, but the model knows the
//! // 1993 cost — 1.4 MB at 1.4 MB/s ≈ one second of drive time.
//! let disk = SimDisk::new(
//!     "rz26-0", catalog::rz26(),
//!     Arc::new(MemStorage::new()), Pacing::Modeled, None,
//! );
//! disk.write(0, &vec![0u8; 1_400_000])?;
//! let busy = disk.stats().busy().as_secs_f64();
//! assert!((busy - 1.0).abs() < 0.05, "modeled {busy} s");
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod array;
pub mod backend;
pub mod catalog;
pub mod disk;
pub mod engine;
pub mod fault;
pub mod spec;
pub mod throttle;

pub use array::{ArrayStats, BackendKind, DiskArray, DiskArrayBuilder};
pub use backend::{FileStorage, MemStorage, Storage};
pub use disk::{ControllerShare, DiskStats, Pacing, SimDisk};
pub use engine::{IoEngine, IoHandle};
pub use fault::{Fault, FaultPlan, FaultyStorage};
pub use spec::{ControllerSpec, DiskSpec};
