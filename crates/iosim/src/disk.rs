//! The simulated disk: storage + timing model + optional real-time pacing.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::backend::Storage;
use crate::spec::{ControllerSpec, DiskSpec};
use crate::throttle::TokenBucket;

/// Whether simulated operations should consume real wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pacing {
    /// Run at host speed; only *modeled* time is accrued. Deterministic and
    /// fast — the default for analytic experiments and tests.
    Modeled,
    /// Additionally sleep so that wall-clock throughput matches the device
    /// model scaled by `speedup` (1.0 = true 1993 speed; 10.0 = ten times
    /// faster while preserving every ratio). Used when an experiment needs
    /// genuine IO/compute overlap.
    RealTime {
        /// Wall-clock acceleration factor applied to all bandwidths.
        speedup: f64,
    },
}

/// A controller shared by several disks: a bandwidth cap plus accounting.
pub struct ControllerShare {
    spec: ControllerSpec,
    bucket: TokenBucket,
    busy_ns: AtomicU64,
    bytes: AtomicU64,
}

impl ControllerShare {
    /// Build a controller share under the given pacing.
    pub fn new(spec: ControllerSpec, pacing: Pacing) -> Arc<Self> {
        let rate = match pacing {
            Pacing::Modeled => 0.0,
            Pacing::RealTime { speedup } => spec.bandwidth_mbps * speedup,
        };
        Arc::new(ControllerShare {
            bucket: TokenBucket::new(rate),
            busy_ns: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            spec,
        })
    }

    fn charge(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns
            .fetch_add(self.spec.transfer_ns(bytes), Ordering::Relaxed);
        self.bucket.acquire(bytes);
    }

    /// The controller's spec.
    pub fn spec(&self) -> &ControllerSpec {
        &self.spec
    }

    /// Modeled busy time accumulated on this controller.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Total bytes that crossed this controller.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset accumulated counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.bytes.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
    }
}

/// Counters one disk accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Operations that were not sequential with the previous one and so paid
    /// a seek.
    pub seeks: u64,
    /// Modeled busy time, nanoseconds (seeks + transfers at spec rates).
    pub busy_ns: u64,
}

impl DiskStats {
    /// Modeled busy time as a `Duration`.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns)
    }
}

/// A single simulated disk drive.
pub struct SimDisk {
    name: String,
    spec: DiskSpec,
    storage: Arc<dyn Storage>,
    bucket: TokenBucket,
    controller: Option<Arc<ControllerShare>>,
    pacing: Pacing,
    stats: Mutex<DiskStats>,
    /// Offset one past the previous operation's last byte, for seek detection.
    last_end: AtomicU64,
}

impl SimDisk {
    /// Build a disk over `storage` with the given spec and pacing, optionally
    /// attached to a controller.
    pub fn new(
        name: impl Into<String>,
        spec: DiskSpec,
        storage: Arc<dyn Storage>,
        pacing: Pacing,
        controller: Option<Arc<ControllerShare>>,
    ) -> Arc<Self> {
        let (read_rate, _write_rate) = match pacing {
            Pacing::Modeled => (0.0, 0.0),
            Pacing::RealTime { speedup } => (spec.read_mbps * speedup, spec.write_mbps * speedup),
        };
        // One bucket per disk; reads and writes share it at the read rate
        // (write pacing applies the read/write ratio as extra tokens below).
        Arc::new(SimDisk {
            name: name.into(),
            bucket: TokenBucket::new(read_rate),
            storage,
            controller,
            pacing,
            stats: Mutex::new(DiskStats::default()),
            last_end: AtomicU64::new(u64::MAX),
            spec,
        })
    }

    /// Disk name (unique within an array).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device spec this disk models.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The controller this disk hangs off, if any.
    pub fn controller(&self) -> Option<&Arc<ControllerShare>> {
        self.controller.as_ref()
    }

    /// Snapshot of accumulated stats.
    pub fn stats(&self) -> DiskStats {
        *self.stats.lock().unwrap()
    }

    /// Reset counters (between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap() = DiskStats::default();
        self.last_end.store(u64::MAX, Ordering::Relaxed);
    }

    /// Bytes currently backed by the storage.
    pub fn len(&self) -> u64 {
        self.storage.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    fn account(&self, is_read: bool, offset: u64, bytes: u64) {
        let seek = self.last_end.swap(offset + bytes, Ordering::Relaxed) != offset;
        let transfer_ns = if is_read {
            self.spec.read_ns(bytes)
        } else {
            self.spec.write_ns(bytes)
        };
        {
            let mut st = self.stats.lock().unwrap();
            if is_read {
                st.reads += 1;
                st.bytes_read += bytes;
            } else {
                st.writes += 1;
                st.bytes_written += bytes;
            }
            if seek {
                st.seeks += 1;
                st.busy_ns += self.spec.seek_ns();
            }
            st.busy_ns += transfer_ns;
        }
        if let Pacing::RealTime { speedup } = self.pacing {
            if seek && self.spec.seek_ms > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(self.spec.seek_ms / 1e3 / speedup));
            }
            // Writes are slower than reads; charge proportionally more tokens
            // so one bucket (at read rate) paces both.
            let tokens = if is_read || self.spec.write_mbps <= 0.0 {
                bytes
            } else {
                (bytes as f64 * self.spec.read_mbps / self.spec.write_mbps) as u64
            };
            self.bucket.acquire(tokens);
        }
        if let Some(ctrl) = &self.controller {
            ctrl.charge(bytes);
        }
    }

    /// Synchronously read `buf.len()` bytes at `offset`.
    pub fn read_into(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.storage.read_at(offset, buf)?;
        self.account(true, offset, buf.len() as u64);
        Ok(())
    }

    /// Synchronously read `len` bytes at `offset` into a fresh buffer.
    pub fn read(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_into(offset, &mut buf)?;
        Ok(buf)
    }

    /// Synchronously write `data` at `offset`.
    pub fn write(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.storage.write_at(offset, data)?;
        self.account(false, offset, data.len() as u64);
        Ok(())
    }

    /// Flush backing storage.
    pub fn sync(&self) -> io::Result<()> {
        self.storage.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;
    use crate::catalog;

    fn mem_disk(spec: DiskSpec, pacing: Pacing) -> Arc<SimDisk> {
        SimDisk::new("d0", spec, Arc::new(MemStorage::new()), pacing, None)
    }

    #[test]
    fn read_back_what_was_written() {
        let d = mem_disk(catalog::uncapped(), Pacing::Modeled);
        d.write(100, b"alphasort").unwrap();
        assert_eq!(d.read(100, 9).unwrap(), b"alphasort");
    }

    #[test]
    fn stats_track_ops_bytes_and_seeks() {
        let d = mem_disk(catalog::rz28(), Pacing::Modeled);
        d.write(0, &[0u8; 1000]).unwrap(); // seek (first op)
        d.write(1000, &[0u8; 1000]).unwrap(); // sequential
        d.write(64_000, &[0u8; 1000]).unwrap(); // seek
        let mut buf = [0u8; 500];
        d.read_into(0, &mut buf).unwrap(); // seek
        let st = d.stats();
        assert_eq!(st.writes, 3);
        assert_eq!(st.reads, 1);
        assert_eq!(st.bytes_written, 3000);
        assert_eq!(st.bytes_read, 500);
        assert_eq!(st.seeks, 3);
    }

    #[test]
    fn modeled_busy_time_matches_spec() {
        let d = mem_disk(catalog::rz28(), Pacing::Modeled); // 4 MB/s read
        let data = vec![0u8; 4_000_000];
        d.write(0, &data).unwrap();
        d.reset_stats();
        let mut buf = vec![0u8; 4_000_000];
        d.read_into(0, &mut buf).unwrap();
        let st = d.stats();
        // 4 MB at 4 MB/s = 1 s, plus one seek (10 ms).
        let busy_s = st.busy_ns as f64 / 1e9;
        assert!((busy_s - 1.01).abs() < 0.02, "busy {busy_s}");
    }

    #[test]
    fn modeled_pacing_does_not_sleep() {
        let d = mem_disk(catalog::rz26(), Pacing::Modeled);
        let t0 = std::time::Instant::now();
        d.write(0, &vec![0u8; 10_000_000]).unwrap(); // 10 MB at 1.4 MB/s would be 7 s paced
        assert!(t0.elapsed() < Duration::from_millis(500));
        assert!(d.stats().busy_ns > 6_000_000_000);
    }

    #[test]
    fn realtime_pacing_enforces_rate() {
        // 100 MB/s-at-speedup disk: 2 MB write should take ~16 ms after
        // burst. Use a quick spec to keep the test fast.
        let spec = DiskSpec {
            name: "fastish".into(),
            read_mbps: 40.0,
            write_mbps: 40.0,
            seek_ms: 0.0,
            capacity_gb: 1.0,
            price_dollars: 0.0,
        };
        let d = mem_disk(spec, Pacing::RealTime { speedup: 1.0 });
        d.write(0, &vec![0u8; 10_000_000]).unwrap(); // drain burst credit
        let t0 = std::time::Instant::now();
        d.write(10_000_000, &vec![0u8; 10_000_000]).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.15, "too fast: {dt}"); // 10 MB at 40 MB/s = 0.25 s
        assert!(dt < 1.0, "too slow: {dt}");
    }

    #[test]
    fn controller_accumulates_for_all_disks() {
        let ctrl = ControllerShare::new(catalog::scsi_controller(), Pacing::Modeled);
        let d1 = SimDisk::new(
            "d1",
            catalog::rz26(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            Some(Arc::clone(&ctrl)),
        );
        let d2 = SimDisk::new(
            "d2",
            catalog::rz26(),
            Arc::new(MemStorage::new()),
            Pacing::Modeled,
            Some(Arc::clone(&ctrl)),
        );
        d1.write(0, &[0u8; 1_000_000]).unwrap();
        d2.write(0, &[0u8; 3_000_000]).unwrap();
        assert_eq!(ctrl.bytes(), 4_000_000);
        // 4 MB at 8 MB/s = 0.5 s modeled controller busy.
        assert!((ctrl.busy().as_secs_f64() - 0.5).abs() < 0.01);
    }
}
