//! The paper's 1993 device catalog, plus a modern uncapped device.
//!
//! Numbers come straight from the paper: §6 ("commodity SCSI disks that cost
//! about 2000$, hold about 2 GB, read at about 5 MB/s, and write at about
//! 3 MB/s"), Table 6 (RZ26 at 1.8 MB/s in the 36-disk array, RZ28 at 4 MB/s
//! measured, IPI at 7 MB/s; 9 SCSI controllers for 36 drives; list prices),
//! and the Genroco IPI controller ("two fast IPI drives offer a sequential
//! read rate of 15 MB/s (measured)").

use crate::spec::{ControllerSpec, DiskSpec};

/// DEC RZ26 commodity SCSI drive as configured in the many-slow array of
/// Table 6: 1.05 GB, ~1.8 MB/s per drive when 4 share a KZMSA controller.
pub fn rz26() -> DiskSpec {
    DiskSpec {
        name: "RZ26".into(),
        read_mbps: 1.8,
        write_mbps: 1.4,
        seek_ms: 12.0,
        capacity_gb: 1.0,
        price_dollars: 2000.0,
    }
}

/// DEC RZ28 fast-SCSI drive: 4 MB/s measured (Table 6), 2 GB.
pub fn rz28() -> DiskSpec {
    DiskSpec {
        name: "RZ28".into(),
        read_mbps: 4.0,
        write_mbps: 3.0,
        seek_ms: 10.0,
        capacity_gb: 2.0,
        price_dollars: 2400.0,
    }
}

/// Generic 1993 commodity SCSI disk from §6's price discussion:
/// reads ~4.5 MB/s, writes ~3.5 MB/s — the "one-minute barrier" drive.
pub fn scsi_1993() -> DiskSpec {
    DiskSpec {
        name: "SCSI-1993".into(),
        read_mbps: 4.5,
        write_mbps: 3.5,
        seek_ms: 10.0,
        capacity_gb: 2.0,
        price_dollars: 2000.0,
    }
}

/// Fast IPI drive on a Genroco controller: 7 MB/s per drive (Table 6).
pub fn ipi_velocitor() -> DiskSpec {
    DiskSpec {
        name: "IPI-Velocitor".into(),
        read_mbps: 7.0,
        write_mbps: 5.5,
        seek_ms: 9.0,
        capacity_gb: 2.0,
        price_dollars: 9000.0,
    }
}

/// An effectively unconstrained modern device (no modeled transfer cost);
/// use when an experiment should run at host speed.
pub fn uncapped() -> DiskSpec {
    DiskSpec {
        name: "uncapped".into(),
        read_mbps: 0.0,
        write_mbps: 0.0,
        seek_ms: 0.0,
        capacity_gb: 1000.0,
        price_dollars: 0.0,
    }
}

/// KZMSA-class plain SCSI controller: ~10 MB/s bus, shared by ~4 drives.
pub fn scsi_controller() -> ControllerSpec {
    ControllerSpec {
        name: "SCSI".into(),
        bandwidth_mbps: 8.0,
        price_dollars: 1000.0,
    }
}

/// Fast (wide) SCSI controller as in the DEC 7000 configs of Table 8.
pub fn fast_scsi_controller() -> ControllerSpec {
    ControllerSpec {
        name: "fast-SCSI".into(),
        bandwidth_mbps: 18.0,
        price_dollars: 1500.0,
    }
}

/// Genroco IPI array controller: 15 MB/s measured with two drives (§6).
pub fn genroco_ipi_controller() -> ControllerSpec {
    ControllerSpec {
        name: "IPI-Genroco".into(),
        bandwidth_mbps: 15.0,
        price_dollars: 6000.0,
    }
}

/// Unconstrained controller for host-speed experiments.
pub fn uncapped_controller() -> ControllerSpec {
    ControllerSpec {
        name: "uncapped".into(),
        bandwidth_mbps: 0.0,
        price_dollars: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_preserved() {
        assert_eq!(rz26().read_mbps, 1.8);
        assert_eq!(rz28().read_mbps, 4.0);
        assert_eq!(ipi_velocitor().read_mbps, 7.0);
        assert_eq!(genroco_ipi_controller().bandwidth_mbps, 15.0);
    }

    #[test]
    fn one_minute_barrier_disk() {
        // §6: ~25 s to read 100 MB, ~30 s to write it back.
        let d = scsi_1993();
        let read_s = d.read_ns(100_000_000) as f64 / 1e9;
        let write_s = d.write_ns(100_000_000) as f64 / 1e9;
        assert!((read_s - 22.2).abs() < 1.0, "read {read_s}");
        assert!((write_s - 28.6).abs() < 1.0, "write {write_s}");
        assert!(read_s + write_s > 45.0 && read_s + write_s < 60.0);
    }

    #[test]
    fn uncapped_is_free() {
        assert_eq!(uncapped().read_ns(1 << 30), 0);
        assert_eq!(uncapped_controller().transfer_ns(1 << 30), 0);
    }
}
