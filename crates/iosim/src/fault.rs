//! Programmable fault injection for robustness testing.
//!
//! [`FaultyStorage`] wraps any [`Storage`] and applies a [`FaultPlan`]:
//! error out or corrupt the N-th read or write. Integration tests use this
//! to prove that the sort surfaces IO failures as errors and that the
//! validator catches silent corruption.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::backend::Storage;

/// One injected failure.
#[derive(Clone, Debug)]
pub enum Fault {
    /// The matching read fails with this error kind.
    ReadError(io::ErrorKind),
    /// The matching write fails with this error kind.
    WriteError(io::ErrorKind),
    /// The matching read succeeds but one byte is flipped (silent corruption).
    CorruptRead {
        /// Index of the byte within the read buffer to flip.
        byte: usize,
    },
    /// The matching write succeeds but one byte is flipped on media.
    CorruptWrite {
        /// Index of the byte within the written data to flip.
        byte: usize,
    },
}

/// When a fault rule fires, against a 0-based per-kind operation counter
/// (reads and writes counted separately).
#[derive(Clone, Copy, Debug)]
enum When {
    /// Exactly the `n`-th operation; the rule is consumed when it fires.
    Nth(u64),
    /// Every `n`-th operation (ops `n-1`, `2n-1`, …); never consumed.
    Every(u64),
    /// Every operation from the `n`-th onward; never consumed.
    After(u64),
}

impl When {
    fn fires(self, op: u64) -> bool {
        match self {
            When::Nth(n) => op == n,
            When::Every(n) => (op + 1).is_multiple_of(n),
            When::After(n) => op >= n,
        }
    }

    fn recurring(self) -> bool {
        !matches!(self, When::Nth(_))
    }
}

/// When faults fire: one-shot on the `op`-th read or write (0-based, counted
/// separately for reads and writes), or recurring — every `n`-th operation,
/// or every operation past the `n`-th. One-shot rules are consumed when they
/// fire; recurring rules persist, which is what retry-budget tests need (a
/// disk that *keeps* failing, not one that hiccups once).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    read_faults: Vec<(When, Fault)>,
    write_faults: Vec<(When, Fault)>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the `n`-th read with `kind`.
    pub fn fail_read(mut self, n: u64, kind: io::ErrorKind) -> Self {
        self.read_faults
            .push((When::Nth(n), Fault::ReadError(kind)));
        self
    }

    /// Fail the `n`-th write with `kind`.
    pub fn fail_write(mut self, n: u64, kind: io::ErrorKind) -> Self {
        self.write_faults
            .push((When::Nth(n), Fault::WriteError(kind)));
        self
    }

    /// Fail every `n`-th read with `kind`, forever (reads `n-1`, `2n-1`, …).
    ///
    /// # Panics
    /// If `n` is zero.
    pub fn fail_read_every(mut self, n: u64, kind: io::ErrorKind) -> Self {
        assert!(n > 0, "fail_read_every period must be positive");
        self.read_faults
            .push((When::Every(n), Fault::ReadError(kind)));
        self
    }

    /// Fail every `n`-th write with `kind`, forever (writes `n-1`, `2n-1`, …).
    ///
    /// # Panics
    /// If `n` is zero.
    pub fn fail_write_every(mut self, n: u64, kind: io::ErrorKind) -> Self {
        assert!(n > 0, "fail_write_every period must be positive");
        self.write_faults
            .push((When::Every(n), Fault::WriteError(kind)));
        self
    }

    /// Fail every read from the `n`-th onward with `kind` (a disk that dies
    /// and stays dead).
    pub fn fail_read_after(mut self, n: u64, kind: io::ErrorKind) -> Self {
        self.read_faults
            .push((When::After(n), Fault::ReadError(kind)));
        self
    }

    /// Fail every write from the `n`-th onward with `kind`.
    pub fn fail_write_after(mut self, n: u64, kind: io::ErrorKind) -> Self {
        self.write_faults
            .push((When::After(n), Fault::WriteError(kind)));
        self
    }

    /// Silently corrupt byte `byte` of the `n`-th read.
    pub fn corrupt_read(mut self, n: u64, byte: usize) -> Self {
        self.read_faults
            .push((When::Nth(n), Fault::CorruptRead { byte }));
        self
    }

    /// Silently corrupt byte `byte` of the `n`-th write.
    pub fn corrupt_write(mut self, n: u64, byte: usize) -> Self {
        self.write_faults
            .push((When::Nth(n), Fault::CorruptWrite { byte }));
        self
    }
}

/// Storage wrapper that injects the planned faults.
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    plan: Mutex<FaultPlan>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FaultyStorage {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> Self {
        FaultyStorage {
            inner,
            plan: Mutex::new(plan),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    fn take_read_fault(&self, op: u64) -> Option<Fault> {
        let mut plan = self.plan.lock().unwrap();
        let idx = plan.read_faults.iter().position(|(w, _)| w.fires(op))?;
        if plan.read_faults[idx].0.recurring() {
            Some(plan.read_faults[idx].1.clone())
        } else {
            Some(plan.read_faults.remove(idx).1)
        }
    }

    fn take_write_fault(&self, op: u64) -> Option<Fault> {
        let mut plan = self.plan.lock().unwrap();
        let idx = plan.write_faults.iter().position(|(w, _)| w.fires(op))?;
        if plan.write_faults[idx].0.recurring() {
            Some(plan.write_faults[idx].1.clone())
        } else {
            Some(plan.write_faults.remove(idx).1)
        }
    }
}

impl Storage for FaultyStorage {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let op = self.reads.fetch_add(1, Ordering::Relaxed);
        match self.take_read_fault(op) {
            Some(Fault::ReadError(kind)) => {
                return Err(io::Error::new(
                    kind,
                    format!("injected read fault at op {op}"),
                ));
            }
            Some(Fault::CorruptRead { byte }) => {
                self.inner.read_at(offset, buf)?;
                if let Some(b) = buf.get_mut(byte) {
                    *b ^= 0xFF;
                }
                return Ok(());
            }
            _ => {}
        }
        self.inner.read_at(offset, buf)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let op = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.take_write_fault(op) {
            Some(Fault::WriteError(kind)) => {
                return Err(io::Error::new(
                    kind,
                    format!("injected write fault at op {op}"),
                ));
            }
            Some(Fault::CorruptWrite { byte }) => {
                let mut copy = data.to_vec();
                if let Some(b) = copy.get_mut(byte) {
                    *b ^= 0xFF;
                }
                return self.inner.write_at(offset, &copy);
            }
            _ => {}
        }
        self.inner.write_at(offset, data)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;

    fn faulty(plan: FaultPlan) -> FaultyStorage {
        FaultyStorage::new(Arc::new(MemStorage::new()), plan)
    }

    #[test]
    fn clean_plan_passes_through() {
        let s = faulty(FaultPlan::new());
        s.write_at(0, b"ok").unwrap();
        let mut buf = [0u8; 2];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"ok");
    }

    #[test]
    fn nth_read_fails_once() {
        let s = faulty(FaultPlan::new().fail_read(1, io::ErrorKind::TimedOut));
        s.write_at(0, b"abcd").unwrap();
        let mut buf = [0u8; 4];
        s.read_at(0, &mut buf).unwrap(); // read 0: fine
        let err = s.read_at(0, &mut buf).unwrap_err(); // read 1: injected
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        s.read_at(0, &mut buf).unwrap(); // read 2: fault consumed
    }

    #[test]
    fn nth_write_fails() {
        let s = faulty(FaultPlan::new().fail_write(0, io::ErrorKind::WriteZero));
        assert_eq!(
            s.write_at(0, b"x").unwrap_err().kind(),
            io::ErrorKind::WriteZero
        );
        s.write_at(0, b"x").unwrap();
    }

    #[test]
    fn corrupt_read_flips_one_byte() {
        let s = faulty(FaultPlan::new().corrupt_read(0, 2));
        s.write_at(0, b"abcd").unwrap();
        let mut buf = [0u8; 4];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], b'a');
        assert_eq!(buf[2], b'c' ^ 0xFF);
    }

    #[test]
    fn corrupt_write_lands_on_media() {
        let s = faulty(FaultPlan::new().corrupt_write(0, 0));
        s.write_at(0, b"zz").unwrap();
        let mut buf = [0u8; 2];
        s.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], b'z' ^ 0xFF);
        assert_eq!(buf[1], b'z');
    }

    #[test]
    fn every_nth_read_fails_forever() {
        let s = faulty(FaultPlan::new().fail_read_every(3, io::ErrorKind::TimedOut));
        s.write_at(0, b"abcd").unwrap();
        let mut buf = [0u8; 4];
        // Every 3rd read fails, i.e. ops where (op + 1) % 3 == 0.
        let mut failures = Vec::new();
        for op in 0..10 {
            if s.read_at(0, &mut buf).is_err() {
                failures.push(op);
            }
        }
        assert_eq!(failures, vec![2, 5, 8]);
    }

    #[test]
    fn every_first_means_all_ops_fail() {
        let s = faulty(FaultPlan::new().fail_write_every(1, io::ErrorKind::WriteZero));
        for _ in 0..5 {
            assert_eq!(
                s.write_at(0, b"x").unwrap_err().kind(),
                io::ErrorKind::WriteZero
            );
        }
    }

    #[test]
    fn after_n_the_disk_stays_dead() {
        let s = faulty(FaultPlan::new().fail_write_after(2, io::ErrorKind::PermissionDenied));
        s.write_at(0, b"a").unwrap(); // op 0
        s.write_at(0, b"b").unwrap(); // op 1
        for _ in 0..4 {
            // ops 2.. all fail, forever
            assert_eq!(
                s.write_at(0, b"c").unwrap_err().kind(),
                io::ErrorKind::PermissionDenied
            );
        }
    }

    #[test]
    fn recurring_read_after() {
        let s = faulty(FaultPlan::new().fail_read_after(1, io::ErrorKind::TimedOut));
        s.write_at(0, b"zz").unwrap();
        let mut buf = [0u8; 2];
        s.read_at(0, &mut buf).unwrap(); // op 0 fine
        assert!(s.read_at(0, &mut buf).is_err());
        assert!(s.read_at(0, &mut buf).is_err());
    }

    #[test]
    fn works_behind_a_sim_disk() {
        use crate::catalog;
        use crate::disk::{Pacing, SimDisk};
        let storage = Arc::new(faulty(
            FaultPlan::new().fail_read(0, io::ErrorKind::Interrupted),
        ));
        let d = SimDisk::new("f0", catalog::uncapped(), storage, Pacing::Modeled, None);
        d.write(0, b"data").unwrap();
        assert!(d.read(0, 4).is_err());
        assert_eq!(d.read(0, 4).unwrap(), b"data");
    }
}
