//! Token-bucket pacing for real-time bandwidth emulation.
//!
//! One bucket per disk and one per controller; an operation acquires its
//! byte count from both, so whichever is slower gates throughput — exactly
//! how a saturated SCSI bus caps the drives behind it.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A token bucket metering bytes per second.
///
/// `acquire(n)` blocks (sleeps) until `n` byte-tokens are available. The
/// bucket allows a burst of up to one refill quantum so small requests are
/// not serialized by timer resolution.
pub struct TokenBucket {
    inner: Mutex<BucketState>,
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
}

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Bucket delivering `mbps` decimal megabytes per second. A rate of 0
    /// means unlimited (acquire never blocks).
    pub fn new(mbps: f64) -> Self {
        let rate = mbps * 1e6;
        TokenBucket {
            inner: Mutex::new(BucketState {
                tokens: 0.0,
                last_refill: Instant::now(),
            }),
            rate_bytes_per_sec: rate,
            // Quarter-second burst keeps sleeps coarse enough to be accurate.
            burst_bytes: rate * 0.25,
        }
    }

    /// Whether this bucket meters at all.
    pub fn is_unlimited(&self) -> bool {
        self.rate_bytes_per_sec <= 0.0
    }

    /// Block until `bytes` tokens are available, then consume them.
    pub fn acquire(&self, bytes: u64) {
        if self.is_unlimited() || bytes == 0 {
            return;
        }
        let bytes = bytes as f64;
        loop {
            let wait = {
                let mut st = self.inner.lock().unwrap();
                let now = Instant::now();
                let elapsed = now.duration_since(st.last_refill).as_secs_f64();
                st.tokens = (st.tokens + elapsed * self.rate_bytes_per_sec).min(self.burst_bytes);
                st.last_refill = now;
                if st.tokens >= bytes {
                    st.tokens -= bytes;
                    return;
                }
                // Tokens may go arbitrarily negative-deficit: sleep for the
                // remaining deficit's duration, then retry.
                (bytes - st.tokens) / self.rate_bytes_per_sec
            };
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.5)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_blocks() {
        let b = TokenBucket::new(0.0);
        let t0 = Instant::now();
        b.acquire(u64::MAX / 2);
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn rate_is_enforced() {
        // 10 MB/s bucket; moving 2.5 MB must take ~0.25 s (minus burst credit).
        let b = TokenBucket::new(10.0);
        // Drain initial burst credit.
        b.acquire(2_500_000);
        let t0 = Instant::now();
        b.acquire(2_500_000);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.15, "too fast: {dt}");
        assert!(dt < 0.6, "too slow: {dt}");
    }

    #[test]
    fn concurrent_acquires_share_rate() {
        use std::sync::Arc;
        let b = Arc::new(TokenBucket::new(20.0)); // 20 MB/s
        b.acquire(5_000_000); // drain burst
        let t0 = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.acquire(1_000_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 MB total at 20 MB/s shared = ~0.2 s.
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt > 0.1, "too fast: {dt}");
        assert!(dt < 0.8, "too slow: {dt}");
    }
}
