//! Backing stores for simulated disks.
//!
//! A [`Storage`] holds the actual bytes of one simulated disk. Two
//! implementations: [`MemStorage`] (a growable in-memory image, used by unit
//! tests and fast experiments) and [`FileStorage`] (a real file with
//! positioned reads/writes, used by disk-to-disk experiment runs).

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::RwLock;

/// Byte-addressed random-access store.
///
/// Implementations must support concurrent calls (they sit behind `Arc` and
/// are hit from IO threads).
pub trait Storage: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at `offset`. Reading past the
    /// end of written data yields zero bytes (disks have no "length").
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Write all of `data` starting at `offset`, growing the store if needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Bytes currently backed (high-water mark of writes).
    fn len(&self) -> u64;

    /// Whether nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush to durable media (no-op for memory).
    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// In-memory backing store.
#[derive(Default)]
pub struct MemStorage {
    data: RwLock<Vec<u8>>,
}

impl MemStorage {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store pre-initialized with `data`.
    pub fn with_data(data: Vec<u8>) -> Self {
        MemStorage {
            data: RwLock::new(data),
        }
    }

    /// Copy out the full current image (tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().unwrap().clone()
    }
}

impl Storage for MemStorage {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let data = self.data.read().unwrap();
        let off = offset as usize;
        let end = off.saturating_add(buf.len());
        if off >= data.len() {
            buf.fill(0);
            return Ok(());
        }
        let avail = data.len().min(end) - off;
        buf[..avail].copy_from_slice(&data[off..off + avail]);
        buf[avail..].fill(0);
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut img = self.data.write().unwrap();
        let off = offset as usize;
        let end = off + data.len();
        if img.len() < end {
            img.resize(end, 0);
        }
        img[off..end].copy_from_slice(data);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.read().unwrap().len() as u64
    }
}

/// File-backed store using positioned IO (`pread`/`pwrite`), so concurrent
/// operations need no shared cursor.
pub struct FileStorage {
    file: File,
}

impl FileStorage {
    /// Create (or truncate) the backing file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage { file })
    }

    /// Open an existing backing file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        let mut done = 0;
        while done < buf.len() {
            let n = self.file.read_at(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                // Past EOF: disks return zeros, like MemStorage.
                buf[done..].fill(0);
                break;
            }
            done += n;
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)
    }

    fn len(&self) -> u64 {
        self.file.metadata().map(|m| m.len()).unwrap_or(0)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn Storage) {
        store.write_at(10, b"hello").unwrap();
        assert_eq!(store.len(), 15);

        let mut buf = [0u8; 5];
        store.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        // Read spanning unwritten prefix returns zeros there.
        let mut buf2 = [0xFFu8; 12];
        store.read_at(8, &mut buf2).unwrap();
        assert_eq!(&buf2[..2], &[0, 0]);
        assert_eq!(&buf2[2..7], b"hello");
        assert_eq!(&buf2[7..], &[0, 0, 0, 0, 0]);

        // Read wholly past EOF is all zeros.
        let mut buf3 = [0xAAu8; 4];
        store.read_at(1000, &mut buf3).unwrap();
        assert_eq!(buf3, [0; 4]);

        // Overwrite in place.
        store.write_at(12, b"LLO").unwrap();
        let mut buf4 = [0u8; 5];
        store.read_at(10, &mut buf4).unwrap();
        assert_eq!(&buf4, b"heLLO");
    }

    #[test]
    fn mem_storage_semantics() {
        let s = MemStorage::new();
        exercise(&s);
    }

    #[test]
    fn file_storage_semantics() {
        let dir = std::env::temp_dir().join(format!("iosim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk0.img");
        let s = FileStorage::create(&path).unwrap();
        exercise(&s);
        s.sync().unwrap();
        drop(s);
        // Reopen preserves contents.
        let s2 = FileStorage::open(&path).unwrap();
        let mut buf = [0u8; 5];
        s2.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"heLLO");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_storage_concurrent_writers() {
        use std::sync::Arc;
        let s = Arc::new(MemStorage::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let off = (t * 100 + i) * 8;
                    s.write_at(off, &(t * 1000 + i).to_le_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            for i in 0..100u64 {
                let mut buf = [0u8; 8];
                s.read_at((t * 100 + i) * 8, &mut buf).unwrap();
                assert_eq!(u64::from_le_bytes(buf), t * 1000 + i);
            }
        }
    }
}
