//! Asynchronous IO: per-disk worker threads and completion handles.
//!
//! AlphaSort's IO style on OpenVMS is NoWait QIO: issue reads/writes on many
//! disks at once, keep computing, and collect completions later. The
//! [`IoEngine`] reproduces that: each disk gets a dedicated IO thread with a
//! bounded request queue; [`IoEngine::read`]/[`IoEngine::write`] return an
//! [`IoHandle`] immediately, and the caller waits only when it needs the
//! result. Because paced disks *sleep* inside their operations, queue depth
//! directly expresses how much IO the caller keeps in flight — triple
//! buffering is "keep three reads outstanding per disk".

use std::cell::RefCell;
use std::io;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use alphasort_obs as obs;

use crate::disk::SimDisk;

enum Request {
    Read {
        offset: u64,
        len: usize,
        issued: Instant,
        reply: SyncSender<io::Result<Vec<u8>>>,
    },
    Write {
        offset: u64,
        data: Vec<u8>,
        issued: Instant,
        reply: SyncSender<io::Result<usize>>,
    },
    Sync {
        issued: Instant,
        reply: SyncSender<io::Result<usize>>,
    },
}

/// Completion handle for an asynchronous operation.
///
/// Dropping a handle without waiting is allowed; the operation still runs.
pub struct IoHandle<T> {
    rx: Receiver<io::Result<T>>,
    /// Result pulled off the channel by a non-consuming poll
    /// ([`is_ready`](Self::is_ready)), parked until `wait`/`try_wait`.
    polled: RefCell<Option<io::Result<T>>>,
}

impl<T> IoHandle<T> {
    fn new(rx: Receiver<io::Result<T>>) -> Self {
        IoHandle {
            rx,
            polled: RefCell::new(None),
        }
    }

    /// A handle that is already complete. Used when submission itself fails
    /// (the disk's IO thread is gone): the error travels through the normal
    /// `wait`/`try_wait` path instead of panicking the submitter.
    fn ready(res: io::Result<T>) -> Self {
        let (tx, rx) = sync_channel(1);
        drop(tx); // never used; `polled` already holds the result
        IoHandle {
            rx,
            polled: RefCell::new(Some(res)),
        }
    }

    /// Block until the operation completes and return its result.
    pub fn wait(self) -> io::Result<T> {
        if let Some(res) = self.polled.into_inner() {
            return res;
        }
        self.rx.recv().unwrap_or_else(|_| {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "IO thread terminated before completing the request",
            ))
        })
    }

    /// Non-blocking poll: `Some` if complete, `None` if still in flight.
    pub fn try_wait(&self) -> Option<io::Result<T>> {
        if let Some(res) = self.polled.borrow_mut().take() {
            return Some(res);
        }
        self.rx.try_recv().ok()
    }

    /// Whether the result is ready (without consuming it).
    pub fn is_ready(&self) -> bool {
        let mut polled = self.polled.borrow_mut();
        if polled.is_some() {
            return true;
        }
        match self.rx.try_recv() {
            Ok(res) => {
                *polled = Some(res);
                true
            }
            Err(_) => false,
        }
    }
}

struct DiskWorker {
    tx: SyncSender<Request>,
    join: Option<JoinHandle<()>>,
}

/// Asynchronous IO engine over a set of disks.
pub struct IoEngine {
    workers: Vec<DiskWorker>,
    disks: Vec<Arc<SimDisk>>,
}

impl IoEngine {
    /// Default bound on queued requests per disk.
    pub const DEFAULT_QUEUE_DEPTH: usize = 64;

    /// Spawn one IO thread per disk with the default queue depth.
    pub fn new(disks: Vec<Arc<SimDisk>>) -> Self {
        Self::with_queue_depth(disks, Self::DEFAULT_QUEUE_DEPTH)
    }

    /// Spawn one IO thread per disk; at most `depth` requests queue per disk
    /// before submission blocks (backpressure).
    pub fn with_queue_depth(disks: Vec<Arc<SimDisk>>, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be positive");
        let workers = disks
            .iter()
            .map(|disk| {
                let (tx, rx) = sync_channel::<Request>(depth);
                let disk = Arc::clone(disk);
                let join = std::thread::Builder::new()
                    .name(format!("io-{}", disk.name()))
                    .spawn(move || Self::run_worker(&disk, &rx))
                    .expect("failed to spawn IO thread");
                DiskWorker {
                    tx,
                    join: Some(join),
                }
            })
            .collect();
        IoEngine { workers, disks }
    }

    fn run_worker(disk: &SimDisk, rx: &Receiver<Request>) {
        // The service span starts when the disk thread dequeues the request;
        // `queue_us` carries the issue→service delay so a trace still shows
        // the full issue→complete life of every request.
        while let Ok(req) = rx.recv() {
            obs::metrics::gauge_add("io.queue_depth", -1);
            match req {
                Request::Read {
                    offset,
                    len,
                    issued,
                    reply,
                } => {
                    let _g = obs::span(obs::phase::IO_READ)
                        .with("disk", disk.name())
                        .with("offset", offset)
                        .with("bytes", len as u64)
                        .with("queue_us", issued.elapsed().as_micros() as u64);
                    obs::metrics::counter_add("io.read.bytes", len as u64);
                    let _ = reply.send(disk.read(offset, len));
                }
                Request::Write {
                    offset,
                    data,
                    issued,
                    reply,
                } => {
                    let n = data.len();
                    let _g = obs::span(obs::phase::IO_WRITE)
                        .with("disk", disk.name())
                        .with("offset", offset)
                        .with("bytes", n as u64)
                        .with("queue_us", issued.elapsed().as_micros() as u64);
                    obs::metrics::counter_add("io.write.bytes", n as u64);
                    let _ = reply.send(disk.write(offset, &data).map(|()| n));
                }
                Request::Sync { issued, reply } => {
                    let _g = obs::span(obs::phase::IO_SYNC)
                        .with("disk", disk.name())
                        .with("queue_us", issued.elapsed().as_micros() as u64);
                    let _ = reply.send(disk.sync().map(|()| 0));
                }
            }
        }
    }

    /// The disks this engine drives, in submission-index order.
    pub fn disks(&self) -> &[Arc<SimDisk>] {
        &self.disks
    }

    /// Number of disks.
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// Error for a request whose disk worker is no longer accepting work.
    fn dead_worker<T>(&self, disk_idx: usize) -> IoHandle<T> {
        obs::metrics::gauge_add("io.queue_depth", -1);
        IoHandle::ready(Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            format!(
                "IO thread for disk {disk_idx} ({}) exited; request dropped",
                self.disks[disk_idx].name()
            ),
        )))
    }

    /// Submit an asynchronous read of `len` bytes at `offset` on disk
    /// `disk_idx`. Blocks only if that disk's queue is full.
    pub fn read(&self, disk_idx: usize, offset: u64, len: usize) -> IoHandle<Vec<u8>> {
        let (reply, rx) = sync_channel(1);
        obs::metrics::gauge_add("io.queue_depth", 1);
        match self.workers[disk_idx].tx.send(Request::Read {
            offset,
            len,
            issued: Instant::now(),
            reply,
        }) {
            Ok(()) => IoHandle::new(rx),
            Err(_) => self.dead_worker(disk_idx),
        }
    }

    /// Submit an asynchronous write of `data` at `offset` on disk `disk_idx`.
    /// The completed value is the byte count written.
    pub fn write(&self, disk_idx: usize, offset: u64, data: Vec<u8>) -> IoHandle<usize> {
        let (reply, rx) = sync_channel(1);
        obs::metrics::gauge_add("io.queue_depth", 1);
        match self.workers[disk_idx].tx.send(Request::Write {
            offset,
            data,
            issued: Instant::now(),
            reply,
        }) {
            Ok(()) => IoHandle::new(rx),
            Err(_) => self.dead_worker(disk_idx),
        }
    }

    /// Submit an asynchronous flush on disk `disk_idx`.
    pub fn sync(&self, disk_idx: usize) -> IoHandle<usize> {
        let (reply, rx) = sync_channel(1);
        obs::metrics::gauge_add("io.queue_depth", 1);
        match self.workers[disk_idx].tx.send(Request::Sync {
            issued: Instant::now(),
            reply,
        }) {
            Ok(()) => IoHandle::new(rx),
            Err(_) => self.dead_worker(disk_idx),
        }
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        // Close the queues; workers drain what is already submitted and exit.
        for w in &mut self.workers {
            let (dead_tx, _) = sync_channel(1);
            let tx = std::mem::replace(&mut w.tx, dead_tx);
            drop(tx);
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;
    use crate::catalog;
    use crate::disk::Pacing;

    fn engine(n: usize) -> IoEngine {
        let disks = (0..n)
            .map(|i| {
                SimDisk::new(
                    format!("d{i}"),
                    catalog::uncapped(),
                    Arc::new(MemStorage::new()),
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        IoEngine::new(disks)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let e = engine(1);
        e.write(0, 0, b"datamation".to_vec()).wait().unwrap();
        let data = e.read(0, 0, 10).wait().unwrap();
        assert_eq!(data, b"datamation");
    }

    #[test]
    fn many_outstanding_requests_complete() {
        let e = engine(4);
        let writes: Vec<_> = (0..100)
            .map(|i| {
                let payload = vec![i as u8; 128];
                e.write(i % 4, (i as u64 / 4) * 128, payload)
            })
            .collect();
        for w in writes {
            assert_eq!(w.wait().unwrap(), 128);
        }
        let reads: Vec<_> = (0..100)
            .map(|i| e.read(i % 4, (i as u64 / 4) * 128, 128))
            .collect();
        for (i, r) in reads.into_iter().enumerate() {
            assert_eq!(r.wait().unwrap(), vec![i as u8; 128]);
        }
    }

    #[test]
    fn try_wait_eventually_ready() {
        let e = engine(1);
        let h = e.write(0, 0, vec![1; 64]);
        let mut spins = 0;
        loop {
            if let Some(res) = h.try_wait() {
                assert_eq!(res.unwrap(), 64);
                break;
            }
            spins += 1;
            assert!(spins < 1_000_000, "write never completed");
            std::hint::spin_loop();
        }
    }

    #[test]
    fn is_ready_does_not_consume_the_result() {
        let e = engine(1);
        let h = e.write(0, 0, vec![1; 32]);
        let mut spins = 0;
        while !h.is_ready() {
            spins += 1;
            assert!(spins < 1_000_000, "write never completed");
            std::hint::spin_loop();
        }
        assert!(h.is_ready()); // still ready on re-poll
        assert_eq!(h.wait().unwrap(), 32); // and the result is intact
    }

    #[test]
    fn per_disk_ordering_is_fifo() {
        // Two writes to the same range on one disk must apply in order.
        let e = engine(1);
        let w1 = e.write(0, 0, vec![1u8; 32]);
        let w2 = e.write(0, 0, vec![2u8; 32]);
        w1.wait().unwrap();
        w2.wait().unwrap();
        assert_eq!(e.read(0, 0, 32).wait().unwrap(), vec![2u8; 32]);
    }

    #[test]
    fn paced_disks_overlap_across_engine() {
        // Two paced disks doing 1 MB each in parallel should take about as
        // long as one disk doing 1 MB, not twice as long.
        let spec = crate::spec::DiskSpec {
            name: "t".into(),
            read_mbps: 20.0,
            write_mbps: 20.0,
            seek_ms: 0.0,
            capacity_gb: 1.0,
            price_dollars: 0.0,
        };
        let disks: Vec<_> = (0..2)
            .map(|i| {
                SimDisk::new(
                    format!("p{i}"),
                    spec.clone(),
                    Arc::new(MemStorage::new()),
                    Pacing::RealTime { speedup: 1.0 },
                    None,
                )
            })
            .collect();
        let e = IoEngine::new(disks);
        // Drain burst credit on both.
        e.write(0, 0, vec![0; 5_000_000]).wait().unwrap();
        e.write(1, 0, vec![0; 5_000_000]).wait().unwrap();

        let t0 = std::time::Instant::now();
        let a = e.write(0, 0, vec![0; 4_000_000]);
        let b = e.write(1, 0, vec![0; 4_000_000]);
        a.wait().unwrap();
        b.wait().unwrap();
        let dt = t0.elapsed().as_secs_f64();
        // Serial would be ~0.4 s; parallel ~0.2 s. Allow slack.
        assert!(dt < 0.35, "no overlap: {dt}");
    }

    #[test]
    fn drop_with_pending_requests_completes_them() {
        let e = engine(1);
        let h = e.write(0, 0, vec![7u8; 16]);
        drop(e); // drains the queue before joining
        assert_eq!(h.wait().unwrap(), 16);
    }
}
