//! Disk arrays: groups of disks hanging off controllers.
//!
//! Table 6 of the paper compares a *many-slow* array (36 RZ26 drives on 9
//! SCSI controllers) against a *few-fast* array (12 RZ28 on 4 SCSI plus 6
//! IPI drives on 3 Genroco controllers). [`DiskArrayBuilder`] assembles such
//! configurations; [`DiskArray`] exposes the member disks (for striping) and
//! array-level accounting: aggregate modeled bandwidth, prices, busy times.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::backend::{FileStorage, MemStorage, Storage};
use crate::disk::{ControllerShare, Pacing, SimDisk};
use crate::spec::{ControllerSpec, DiskSpec};

/// Where member disks keep their bytes.
#[derive(Clone, Debug)]
pub enum BackendKind {
    /// Each disk is an in-memory image.
    Memory,
    /// Each disk is a file `<dir>/<disk-name>.img`.
    Dir(PathBuf),
}

/// Builder for a [`DiskArray`].
pub struct DiskArrayBuilder {
    pacing: Pacing,
    backend: BackendKind,
    groups: Vec<(ControllerSpec, DiskSpec, usize)>,
}

impl DiskArrayBuilder {
    /// Start building an array with the given pacing and backend.
    pub fn new(pacing: Pacing, backend: BackendKind) -> Self {
        DiskArrayBuilder {
            pacing,
            backend,
            groups: Vec::new(),
        }
    }

    /// Add one controller with `count` disks of the given spec behind it.
    pub fn controller(mut self, ctrl: ControllerSpec, disk: DiskSpec, count: usize) -> Self {
        self.groups.push((ctrl, disk, count));
        self
    }

    /// Materialize the array.
    pub fn build(self) -> io::Result<DiskArray> {
        let mut disks = Vec::new();
        let mut controllers = Vec::new();
        if let BackendKind::Dir(dir) = &self.backend {
            std::fs::create_dir_all(dir)?;
        }
        for (gi, (ctrl_spec, disk_spec, count)) in self.groups.into_iter().enumerate() {
            let share = ControllerShare::new(ctrl_spec, self.pacing);
            for di in 0..count {
                let name = format!("c{gi}-{}{di}", disk_spec.name.to_lowercase());
                let storage: Arc<dyn Storage> = match &self.backend {
                    BackendKind::Memory => Arc::new(MemStorage::new()),
                    BackendKind::Dir(dir) => {
                        Arc::new(FileStorage::create(dir.join(format!("{name}.img")))?)
                    }
                };
                disks.push(SimDisk::new(
                    name,
                    disk_spec.clone(),
                    storage,
                    self.pacing,
                    Some(Arc::clone(&share)),
                ));
            }
            controllers.push(share);
        }
        Ok(DiskArray { disks, controllers })
    }
}

/// A built disk array.
pub struct DiskArray {
    disks: Vec<Arc<SimDisk>>,
    controllers: Vec<Arc<ControllerShare>>,
}

/// Aggregated array accounting.
#[derive(Clone, Debug, Default)]
pub struct ArrayStats {
    /// Bytes read across all disks.
    pub bytes_read: u64,
    /// Bytes written across all disks.
    pub bytes_written: u64,
    /// The largest modeled busy time of any single disk.
    pub max_disk_busy: Duration,
    /// The largest modeled busy time of any single controller.
    pub max_controller_busy: Duration,
}

impl ArrayStats {
    /// Modeled elapsed time for the work the array has absorbed, assuming
    /// perfectly parallel member operation: the slowest disk or controller
    /// sets the pace.
    pub fn modeled_elapsed(&self) -> Duration {
        self.max_disk_busy.max(self.max_controller_busy)
    }

    /// Modeled aggregate bandwidth in MB/s for the absorbed work.
    pub fn modeled_bandwidth_mbps(&self) -> f64 {
        let secs = self.modeled_elapsed().as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / 1e6 / secs
    }
}

impl DiskArray {
    /// Member disks, in controller-then-disk order (stripe across this).
    pub fn disks(&self) -> &[Arc<SimDisk>] {
        &self.disks
    }

    /// Number of member disks.
    pub fn width(&self) -> usize {
        self.disks.len()
    }

    /// Member controllers.
    pub fn controllers(&self) -> &[Arc<ControllerShare>] {
        &self.controllers
    }

    /// Total 1993 list price: disks plus controllers.
    pub fn price_dollars(&self) -> f64 {
        let d: f64 = self.disks.iter().map(|d| d.spec().price_dollars).sum();
        let c: f64 = self
            .controllers
            .iter()
            .map(|c| c.spec().price_dollars)
            .sum();
        d + c
    }

    /// Total capacity in gigabytes.
    pub fn capacity_gb(&self) -> f64 {
        self.disks.iter().map(|d| d.spec().capacity_gb).sum()
    }

    /// Aggregate the nominal (spec-sheet) read bandwidth: the sum of member
    /// disk rates, each group clipped by its controller's cap.
    pub fn nominal_read_mbps(&self) -> f64 {
        self.per_controller_rate(|d| d.read_mbps)
    }

    /// Aggregate nominal write bandwidth.
    pub fn nominal_write_mbps(&self) -> f64 {
        self.per_controller_rate(|d| d.write_mbps)
    }

    fn per_controller_rate(&self, rate: impl Fn(&DiskSpec) -> f64) -> f64 {
        self.controllers
            .iter()
            .map(|ctrl| {
                let disk_sum: f64 = self
                    .disks
                    .iter()
                    .filter(|d| {
                        d.controller()
                            .map(|c| Arc::ptr_eq(c, ctrl))
                            .unwrap_or(false)
                    })
                    .map(|d| rate(d.spec()))
                    .sum();
                let cap = ctrl.spec().bandwidth_mbps;
                if cap > 0.0 {
                    disk_sum.min(cap)
                } else {
                    disk_sum
                }
            })
            .sum()
    }

    /// Snapshot aggregated stats.
    pub fn stats(&self) -> ArrayStats {
        let mut s = ArrayStats::default();
        for d in &self.disks {
            let st = d.stats();
            s.bytes_read += st.bytes_read;
            s.bytes_written += st.bytes_written;
            s.max_disk_busy = s.max_disk_busy.max(st.busy());
        }
        for c in &self.controllers {
            s.max_controller_busy = s.max_controller_busy.max(c.busy());
        }
        s
    }

    /// Reset every member disk's and controller's counters.
    pub fn reset_stats(&self) {
        for d in &self.disks {
            d.reset_stats();
        }
        for c in &self.controllers {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    /// The many-slow array of Table 6: 36 RZ26 on 9 SCSI controllers.
    fn many_slow() -> DiskArray {
        DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_requested_topology() {
        let a = many_slow();
        assert_eq!(a.width(), 36);
        assert_eq!(a.controllers().len(), 9);
        assert!((a.capacity_gb() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_bandwidth_sums_under_controller_caps() {
        let a = many_slow();
        // 36 × 1.8 = 64.8 MB/s; 4 × 1.8 = 7.2 < 8 cap, so no clipping.
        assert!((a.nominal_read_mbps() - 64.8).abs() < 1e-9);
    }

    #[test]
    fn controller_cap_clips_group_rate() {
        // 8 RZ28 (4 MB/s each = 32) behind one 8 MB/s controller → 8.
        let a = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory)
            .controller(catalog::scsi_controller(), catalog::rz28(), 8)
            .build()
            .unwrap();
        assert!((a.nominal_read_mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn stats_aggregate_and_modeled_elapsed() {
        let a = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory)
            .controller(catalog::uncapped_controller(), catalog::rz26(), 2)
            .build()
            .unwrap();
        // Write 1.8 MB to one disk only: modeled elapsed = that disk's ~1 s
        // (write rate 1.4 MB/s → ~1.29 s) + seek.
        a.disks()[0].write(0, &vec![0u8; 1_800_000]).unwrap();
        let st = a.stats();
        assert_eq!(st.bytes_written, 1_800_000);
        let secs = st.modeled_elapsed().as_secs_f64();
        assert!((secs - 1.297).abs() < 0.05, "elapsed {secs}");
    }

    #[test]
    fn price_includes_disks_and_controllers() {
        let a = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory)
            .controller(catalog::scsi_controller(), catalog::rz26(), 4)
            .build()
            .unwrap();
        assert!((a.price_dollars() - (4.0 * 2000.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn file_backend_creates_images() {
        let dir = std::env::temp_dir().join(format!("iosim-array-{}", std::process::id()));
        let a = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Dir(dir.clone()))
            .controller(catalog::uncapped_controller(), catalog::uncapped(), 2)
            .build()
            .unwrap();
        a.disks()[1].write(0, b"persist").unwrap();
        assert_eq!(a.disks()[1].read(0, 7).unwrap(), b"persist");
        assert!(std::fs::read_dir(&dir).unwrap().count() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
