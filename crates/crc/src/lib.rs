//! CRC32C (Castagnoli) — the workspace's shared integrity checksum.
//!
//! One polynomial, one table, two faces:
//!
//! * [`crc32c`] — one-shot checksum of a byte slice (the RFC 3720 / iSCSI
//!   CRC, as used by the `netsort` wire frames).
//! * [`Crc32c`] — incremental state for streams that arrive in pieces (the
//!   `stripefs` write-behind path folds each issued stride in as it goes).
//!
//! The implementation is software table-driven and `const`-built, keeping
//! the workspace std-only and offline. Hardware CRC32C instructions would
//! be ~10× faster, but every consumer here checksums data it is about to
//! push through a (simulated or real) disk or socket, so the table lookup
//! is never the bottleneck.
//!
//! ```
//! use alphasort_crc::{crc32c, Crc32c};
//!
//! // RFC 3720 §B.4 test vector.
//! assert_eq!(crc32c(b"123456789"), 0xE306_9283);
//!
//! // Incremental state matches the one-shot form across any split.
//! let mut inc = Crc32c::new();
//! inc.update(b"1234");
//! inc.update(b"56789");
//! assert_eq!(inc.finish(), crc32c(b"123456789"));
//! ```

/// CRC32C (Castagnoli) polynomial, bit-reflected.
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32c_table();

/// Fold `data` into a running (pre-inverted) CRC32C state.
#[inline]
fn update_raw(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32C of `data` (the RFC 3720 / iSCSI checksum), software table-driven.
pub fn crc32c(data: &[u8]) -> u32 {
    !update_raw(!0, data)
}

/// Incremental CRC32C state for data that arrives in pieces.
///
/// `Crc32c::new()` → any number of [`update`](Self::update) calls →
/// [`finish`](Self::finish). Splitting the input differently never changes
/// the result. `finish` does not consume the state, so a stream can be
/// fingerprinted at checkpoints and continue.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh state (checksum of the empty stream is 0).
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update_raw(self.state, data);
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3720_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
        assert_eq!(Crc32c::new().finish(), 0);
    }

    #[test]
    fn incremental_matches_one_shot_for_every_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = crc32c(&data);
        for cut in [0, 1, 7, 99, 500, 999, 1000] {
            let mut inc = Crc32c::new();
            inc.update(&data[..cut]);
            inc.update(&data[cut..]);
            assert_eq!(inc.finish(), whole, "split at {cut}");
        }
    }

    #[test]
    fn finish_is_a_checkpoint_not_a_terminator() {
        let mut inc = Crc32c::new();
        inc.update(b"abc");
        let mid = inc.finish();
        assert_eq!(mid, crc32c(b"abc"));
        inc.update(b"def");
        assert_eq!(inc.finish(), crc32c(b"abcdef"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x5Au8; 64];
        let base = crc32c(&data);
        for i in 0..64 {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "byte {i} bit {bit}");
            }
        }
    }
}
