//! Job manifests, states, and the service's typed errors.
//!
//! A *job manifest* is what a client submits: a name, the input size, and
//! the memory/scratch budgets the job wants carved out of the daemon's
//! [`pool`](crate::pool). The daemon validates the manifest against the
//! pool's totals *before* admission — a job that could never fit is
//! rejected immediately with a non-retryable error instead of queueing
//! forever — and against the plan the budgets imply (a two-pass job whose
//! scratch budget cannot hold its runs is equally hopeless).

use alphasort_core::{Kernel, PassPlan, Planner, RecordLayout};
use alphasort_dmgen::RECORD_LEN;
use alphasort_minijson::Json;

/// Smallest admissible memory budget: enough for one modest run buffer
/// plus entry arrays. Requests below this are rejected as too small.
pub const MIN_JOB_MEM: u64 = 64 * 1024;

/// What a client asks for: input size plus resource budgets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen label (shows up in status and per-job obs tracks).
    pub name: String,
    /// Exact byte length of the input the client will stream.
    pub input_bytes: u64,
    /// Memory budget in bytes, carved from the pool while the job runs.
    pub mem_budget: u64,
    /// Scratch budget in bytes (two-pass spill space); may be 0 for jobs
    /// small enough to sort in one pass under `mem_budget`.
    pub scratch_budget: u64,
    /// Key ranges for the partitioned parallel merge (0 = serial).
    pub merge_workers: usize,
    /// Hot-path kernel variant (see `alphasort_core::kernels`). Optional on
    /// the wire; absent means the scalar oracle, so old clients keep
    /// working unchanged.
    pub kernel: Kernel,
    /// Record model (see `alphasort_core::entry::RecordLayout`). Optional
    /// on the wire; absent means fixed Datamation records, so old clients
    /// keep working unchanged. `varlen` streams length-prefixed frames with
    /// string keys through the LCP/OVC-aware pipeline.
    pub layout: RecordLayout,
    /// Client-supplied idempotency key. Optional on the wire. With a
    /// journaling daemon, re-submitting the same key never executes twice:
    /// a key whose job already reached a terminal state is answered with
    /// that state (at-most-once), and a key interrupted by a daemon kill
    /// resumes from its surviving scratch runs. Keys starting with `anon-`
    /// are reserved for the daemon's own synthetic keys.
    pub idem_key: Option<String>,
    /// Wall-clock deadline in milliseconds, measured from acceptance
    /// (queue wait counts). 0 — and absence on the wire — means unlimited;
    /// past the deadline the daemon's watchdog cancels the job with the
    /// non-retryable `deadline_exceeded` code.
    pub deadline_ms: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: String::new(),
            input_bytes: 0,
            mem_budget: 0,
            scratch_budget: 0,
            merge_workers: 0,
            kernel: Kernel::Scalar,
            layout: RecordLayout::Datamation,
            idem_key: None,
            deadline_ms: 0,
        }
    }
}

impl JobSpec {
    /// Render for the submit frame.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type".into(), Json::from("submit")),
            ("name".into(), Json::from(self.name.as_str())),
            ("input_bytes".into(), Json::from(self.input_bytes)),
            ("mem_budget".into(), Json::from(self.mem_budget)),
            ("scratch_budget".into(), Json::from(self.scratch_budget)),
            ("merge_workers".into(), Json::from(self.merge_workers as u64)),
            ("kernel".into(), Json::from(self.kernel.name())),
        ];
        if self.layout != RecordLayout::Datamation {
            fields.push(("layout".into(), Json::from(self.layout.name())));
        }
        if let Some(key) = &self.idem_key {
            fields.push(("idem_key".into(), Json::from(key.as_str())));
        }
        if self.deadline_ms > 0 {
            fields.push(("deadline_ms".into(), Json::from(self.deadline_ms)));
        }
        Json::Obj(fields)
    }

    /// Parse from a submit frame. `kernel` is optional (default scalar), as
    /// is `layout` (default `datamation`); an *unknown* kernel or layout
    /// name is a manifest error, not a silent default — the client asked
    /// for something this daemon does not register. `idem_key` and
    /// `deadline_ms` are equally optional, so pre-journal clients keep
    /// working unchanged.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let kernel = match doc.get("kernel") {
            None => Kernel::Scalar,
            Some(v) => {
                let name = v.as_str().ok_or("kernel: expected a string")?;
                Kernel::from_name(name).ok_or_else(|| format!("unknown kernel {name:?}"))?
            }
        };
        let layout = match doc.get("layout") {
            None => RecordLayout::Datamation,
            Some(v) => {
                let name = v.as_str().ok_or("layout: expected a string")?;
                RecordLayout::from_name(name).ok_or_else(|| format!("unknown layout {name:?}"))?
            }
        };
        let idem_key = match doc.get("idem_key") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("idem_key: expected a string")?
                    .to_string(),
            ),
        };
        Ok(JobSpec {
            name: doc.field_str("name").map_err(|e| e.to_string())?.to_string(),
            input_bytes: doc.field_u64("input_bytes").map_err(|e| e.to_string())?,
            mem_budget: doc.field_u64("mem_budget").map_err(|e| e.to_string())?,
            scratch_budget: doc.field_u64("scratch_budget").map_err(|e| e.to_string())?,
            merge_workers: doc.field_u64("merge_workers").map_err(|e| e.to_string())? as usize,
            kernel,
            layout,
            idem_key,
            deadline_ms: match doc.get("deadline_ms") {
                None => 0,
                Some(v) => v.as_u64().ok_or("deadline_ms: expected an integer")?,
            },
        })
    }

    /// The pass plan this spec's budgets imply.
    pub fn plan(&self) -> PassPlan {
        Planner::new(self.mem_budget).plan(self.input_bytes)
    }

    /// Reject manifests that could never run: malformed input length,
    /// budgets below the floor, budgets above the pool's *total* capacity
    /// (would queue forever), or a two-pass plan whose scratch budget
    /// cannot hold the spilled runs.
    pub fn validate(&self, pool_mem_total: u64, pool_scratch_total: u64) -> Result<(), SortdError> {
        if self.input_bytes == 0 {
            return Err(SortdError::BadManifest(
                "input_bytes must be positive".into(),
            ));
        }
        // Only the fixed layout has a stride to check up front; var-len
        // framing is validated during the read, record by record.
        if self.layout == RecordLayout::Datamation
            && !self.input_bytes.is_multiple_of(RECORD_LEN as u64)
        {
            return Err(SortdError::BadManifest(format!(
                "input_bytes {} is not a positive multiple of the {RECORD_LEN}-byte record",
                self.input_bytes
            )));
        }
        if self.mem_budget < MIN_JOB_MEM {
            return Err(SortdError::BudgetTooSmall {
                what: "memory",
                asked: self.mem_budget,
                need: MIN_JOB_MEM,
            });
        }
        if self.mem_budget > pool_mem_total {
            return Err(SortdError::BudgetTooLarge {
                what: "memory",
                asked: self.mem_budget,
                total: pool_mem_total,
            });
        }
        if self.scratch_budget > pool_scratch_total {
            return Err(SortdError::BudgetTooLarge {
                what: "scratch",
                asked: self.scratch_budget,
                total: pool_scratch_total,
            });
        }
        if self.plan() == PassPlan::TwoPass && self.scratch_budget < self.input_bytes {
            return Err(SortdError::BudgetTooSmall {
                what: "scratch",
                asked: self.scratch_budget,
                need: self.input_bytes,
            });
        }
        if let Some(key) = &self.idem_key {
            if key.is_empty() {
                return Err(SortdError::BadManifest("idem_key must not be empty".into()));
            }
            if key.starts_with("anon-") {
                return Err(SortdError::BadManifest(
                    "idem_key prefix `anon-` is reserved for the daemon's synthetic keys".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting behind the pool in the admission queue.
    Queued,
    /// Budget reserved; the sort is executing.
    Running,
    /// Finished; output was streamed back.
    Done,
    /// Failed (execution error, or failed retryably at drain).
    Failed,
    /// Canceled by the client before completion.
    Canceled,
}

impl JobState {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }
}

/// The service's typed errors: every rejection and failure a client can
/// see carries a machine-readable `code` and a `retryable` bit, so a fleet
/// can tell backpressure (come back later) from hopeless manifests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortdError {
    /// Admission queue is at its bound — the typed backpressure error.
    Backpressure {
        /// Jobs already waiting.
        depth: usize,
        /// The configured queue bound.
        bound: usize,
    },
    /// The daemon is draining: running jobs finish, nothing new starts.
    Draining,
    /// The client canceled the job.
    Canceled,
    /// The client's connection died before the job could run (e.g. the
    /// ack write failed after admission); the job was settled unrun.
    ClientGone,
    /// A budget exceeds the pool's total capacity — never admittable.
    BudgetTooLarge {
        /// Which budget (`"memory"` or `"scratch"`).
        what: &'static str,
        /// Requested bytes.
        asked: u64,
        /// The pool's total.
        total: u64,
    },
    /// A budget is too small for the job it describes.
    BudgetTooSmall {
        /// Which budget (`"memory"` or `"scratch"`).
        what: &'static str,
        /// Requested bytes.
        asked: u64,
        /// Minimum that could work.
        need: u64,
    },
    /// The manifest itself is malformed.
    BadManifest(String),
    /// The sort failed while executing.
    Exec(String),
    /// The job's `deadline_ms` elapsed (queued or running) and the
    /// watchdog canceled it. Not retryable: the identical submit would
    /// blow the identical deadline.
    DeadlineExceeded {
        /// The deadline the manifest asked for.
        limit_ms: u64,
    },
}

impl SortdError {
    /// Machine-readable error code (stable wire contract).
    pub fn code(&self) -> &'static str {
        match self {
            SortdError::Backpressure { .. } => "backpressure",
            SortdError::Draining => "draining",
            SortdError::Canceled => "canceled",
            SortdError::ClientGone => "client_gone",
            SortdError::BudgetTooLarge { .. } => "budget_too_large",
            SortdError::BudgetTooSmall { .. } => "budget_too_small",
            SortdError::BadManifest(_) => "bad_manifest",
            SortdError::Exec(_) => "exec_failed",
            SortdError::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// Whether the same submit can succeed later without changes: true for
    /// load-shedding (backpressure) and drain, false for manifests that
    /// can never be admitted and for execution failures.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            SortdError::Backpressure { .. } | SortdError::Draining
        )
    }
}

impl std::fmt::Display for SortdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortdError::Backpressure { depth, bound } => write!(
                f,
                "admission queue full ({depth} waiting, bound {bound}); retry with backoff"
            ),
            SortdError::Draining => write!(f, "daemon is draining; retry against another instance"),
            SortdError::Canceled => write!(f, "job canceled by client"),
            SortdError::ClientGone => {
                write!(f, "client disconnected before the job ran")
            }
            SortdError::BudgetTooLarge { what, asked, total } => write!(
                f,
                "{what} budget {asked} exceeds the pool total {total}; the job can never be admitted"
            ),
            SortdError::BudgetTooSmall { what, asked, need } => {
                write!(f, "{what} budget {asked} is below the {need} this job needs")
            }
            SortdError::BadManifest(m) => write!(f, "bad manifest: {m}"),
            SortdError::Exec(m) => write!(f, "sort failed: {m}"),
            SortdError::DeadlineExceeded { limit_ms } => {
                write!(f, "job exceeded its {limit_ms} ms deadline and was canceled")
            }
        }
    }
}

impl std::error::Error for SortdError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(input: u64, mem: u64, scratch: u64) -> JobSpec {
        JobSpec {
            name: "t".into(),
            input_bytes: input,
            mem_budget: mem,
            scratch_budget: scratch,
            ..JobSpec::default()
        }
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec(1_000 * RECORD_LEN as u64, 1 << 20, 2 << 20);
        let got = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(got, s);
        for kernel in Kernel::ALL {
            let s = JobSpec { kernel, ..s.clone() };
            assert_eq!(JobSpec::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn idem_key_and_deadline_roundtrip_and_default_off() {
        // Both set: they survive the wire.
        let s = JobSpec {
            idem_key: Some("fleet-7".into()),
            deadline_ms: 2_500,
            ..spec(1_000 * RECORD_LEN as u64, 1 << 20, 0)
        };
        let got = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(got, s);
        // Both absent (an old client's manifest): no key, unlimited.
        let plain = spec(1_000 * RECORD_LEN as u64, 1 << 20, 0);
        let doc = plain.to_json();
        assert!(doc.get("idem_key").is_none(), "no key field when unset");
        assert!(doc.get("deadline_ms").is_none(), "no deadline field when 0");
        let got = JobSpec::from_json(&doc).unwrap();
        assert_eq!(got.idem_key, None);
        assert_eq!(got.deadline_ms, 0);
    }

    #[test]
    fn kernel_field_is_optional_but_validated() {
        // An old client's manifest (no `kernel` field) defaults to scalar.
        let s = spec(1_000 * RECORD_LEN as u64, 1 << 20, 0);
        let Json::Obj(fields) = s.to_json() else { panic!() };
        let without: Vec<_> = fields.into_iter().filter(|(k, _)| k != "kernel").collect();
        let got = JobSpec::from_json(&Json::Obj(without.clone())).unwrap();
        assert_eq!(got.kernel, Kernel::Scalar);
        // An unknown kernel name is a parse error (→ bad_manifest), not a
        // silent fallback.
        let mut bad = without;
        bad.push(("kernel".into(), Json::from("warp-drive")));
        let err = JobSpec::from_json(&Json::Obj(bad)).unwrap_err();
        assert!(err.contains("unknown kernel"), "{err}");
    }

    #[test]
    fn layout_field_is_optional_but_validated() {
        // Absent on the wire (and omitted when default): datamation.
        let s = spec(1_000 * RECORD_LEN as u64, 1 << 20, 0);
        let doc = s.to_json();
        assert!(doc.get("layout").is_none(), "no layout field when default");
        assert_eq!(JobSpec::from_json(&doc).unwrap().layout, RecordLayout::Datamation);
        // Var-len survives the wire.
        let v = JobSpec {
            layout: RecordLayout::VarLen,
            ..s.clone()
        };
        assert_eq!(JobSpec::from_json(&v.to_json()).unwrap(), v);
        // An unknown layout name is a parse error, not a silent fallback.
        let Json::Obj(mut fields) = s.to_json() else { panic!() };
        fields.push(("layout".into(), Json::from("parquet")));
        let err = JobSpec::from_json(&Json::Obj(fields)).unwrap_err();
        assert!(err.contains("unknown layout"), "{err}");
    }

    #[test]
    fn varlen_inputs_need_not_be_record_aligned() {
        let pool = (8 << 20, 32 << 20);
        // 150 bytes is ragged for datamation but fine for var-len frames.
        let ragged = JobSpec {
            layout: RecordLayout::VarLen,
            ..spec(150, 1 << 20, 0)
        };
        ragged.validate(pool.0, pool.1).unwrap();
        // Empty input is still hopeless under any layout.
        let empty = JobSpec {
            layout: RecordLayout::VarLen,
            ..spec(0, 1 << 20, 0)
        };
        assert_eq!(empty.validate(pool.0, pool.1).unwrap_err().code(), "bad_manifest");
    }

    #[test]
    fn validation_rejects_hopeless_manifests() {
        let pool = (8 << 20, 32 << 20);
        // Fine: small one-pass job.
        spec(100 * 100, 1 << 20, 0).validate(pool.0, pool.1).unwrap();
        // Ragged input length.
        assert_eq!(
            spec(150, 1 << 20, 0).validate(pool.0, pool.1).unwrap_err().code(),
            "bad_manifest"
        );
        // Memory below the floor / above the pool.
        assert_eq!(
            spec(100 * 100, 1, 0).validate(pool.0, pool.1).unwrap_err().code(),
            "budget_too_small"
        );
        let err = spec(100 * 100, 16 << 20, 0).validate(pool.0, pool.1).unwrap_err();
        assert_eq!(err.code(), "budget_too_large");
        assert!(!err.retryable(), "oversized budgets are not retryable");
        // Two-pass without the scratch to hold its runs.
        let big = 4 * (8 << 20) as u64 / 100 * 100; // 4x memory, record-aligned
        assert_eq!(
            spec(big, 1 << 20, big / 2).validate(pool.0, pool.1).unwrap_err().code(),
            "budget_too_small"
        );
        // Same job with honest scratch passes.
        spec(big, 1 << 20, big).validate(pool.0, pool.1).unwrap();
        // Reserved / empty idempotency keys are manifest errors.
        for key in ["", "anon-job-3"] {
            let s = JobSpec {
                idem_key: Some(key.into()),
                ..spec(100 * 100, 1 << 20, 0)
            };
            assert_eq!(s.validate(pool.0, pool.1).unwrap_err().code(), "bad_manifest");
        }
    }

    #[test]
    fn error_codes_carry_the_retry_contract() {
        assert!(SortdError::Backpressure { depth: 9, bound: 8 }.retryable());
        assert!(SortdError::Draining.retryable());
        assert!(!SortdError::Canceled.retryable());
        assert!(!SortdError::Exec("boom".into()).retryable());
        let dl = SortdError::DeadlineExceeded { limit_ms: 50 };
        assert_eq!(dl.code(), "deadline_exceeded");
        assert!(!dl.retryable(), "same submit would blow the same deadline");
    }
}
