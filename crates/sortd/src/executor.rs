//! Runs one admitted job through the existing AlphaSort drivers, under its
//! budget, on its own obs track.
//!
//! The executor is deliberately thin: everything hard — run formation,
//! spill, cascade merge, partitioned merge — lives in the drivers. What the
//! daemon adds is *containment*: the job's `mem_budget` becomes the
//! planner's budget (so the one-/two-pass decision is per job, not per
//! process), run length is derated from the same budget, and two-pass
//! scratch goes either to a private in-memory store or to a **namespaced**
//! slice of the daemon's shared striped volume so concurrent jobs cannot
//! collide on run file names.

use std::io;
use std::sync::Arc;

use alphasort_core::driver::{MemScratch, StripeScratch};
use alphasort_core::{ExternalSorter, MemSink, MemSource, PassPlan, SortConfig, SortStats};
use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;
use alphasort_stripefs::Volume;

use crate::job::JobSpec;

/// Where two-pass jobs spill their runs.
#[derive(Clone)]
pub enum ScratchBacking {
    /// Private in-memory scratch per job (tests, benchmarks).
    Memory,
    /// One striped volume shared by every job; per-job namespaces keep run
    /// files apart. The `u64` is the stripe chunk size.
    SharedVolume(Arc<Volume>, u64),
}

/// Derive a per-job [`SortConfig`] from the manifest's budgets.
///
/// Run length is a quarter of the memory budget (the rest covers entry
/// arrays, merge buffers, and the planner's 10% slack), clamped to keep
/// tiny budgets sortable and huge ones from forming megaruns that starve
/// the merge of fan-in.
pub fn config_for(spec: &JobSpec) -> SortConfig {
    let run_records = (spec.mem_budget / 4 / RECORD_LEN as u64).clamp(256, 100_000) as usize;
    SortConfig {
        run_records,
        memory_budget: spec.mem_budget,
        merge_workers: spec.merge_workers,
        gather_batch: run_records.min(10_000),
        kernel: spec.kernel,
        ..SortConfig::default()
    }
}

/// Sort `input` under `spec`'s budgets. Returns the sorted bytes, the
/// phase stats, and the plan that ran.
///
/// Observability lands on track `job-<id>` so concurrent jobs' spans and
/// metrics stay separable in the trace.
pub fn run_job(
    id: u64,
    spec: &JobSpec,
    input: Vec<u8>,
    backing: &ScratchBacking,
) -> io::Result<(Vec<u8>, SortStats, PassPlan)> {
    obs::set_track(&format!("job-{id}"));
    let _job = obs::span(obs::phase::SORTD_JOB);

    let cfg = config_for(spec);
    let sorter = ExternalSorter::new(cfg.clone());
    let mut source = MemSource::new(input, cfg.gather_batch * RECORD_LEN);
    let mut sink = MemSink::new();

    let outcome = {
        let _exec = obs::span(obs::phase::SORTD_EXEC);
        match backing {
            ScratchBacking::Memory => {
                let mut scratch = MemScratch::new(cfg.gather_batch * RECORD_LEN);
                sorter.sort(&mut source, &mut sink, &mut scratch)?
            }
            ScratchBacking::SharedVolume(volume, chunk) => {
                let mut scratch =
                    StripeScratch::new(Arc::clone(volume), *chunk).named(format!("job{id}-run"));
                let outcome = sorter.sort(&mut source, &mut sink, &mut scratch);
                // Reclaim this job's extents whether the sort succeeded or
                // not — the daemon owns the volume's lifetime, so leaked
                // runs are pure leak, not crash-resume state.
                scratch.dispose();
                outcome?
            }
        }
    };

    obs::metrics::counter_add("sortd.exec.bytes", outcome.bytes);
    Ok((sink.into_inner(), outcome.stats, outcome.plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_dmgen::{generate, records_of_mut, GenConfig};

    fn oracle(mut data: Vec<u8>) -> Vec<u8> {
        records_of_mut(&mut data).sort_by_key(|r| r.key);
        data
    }

    fn spec(input: u64, mem: u64, scratch: u64) -> JobSpec {
        JobSpec {
            name: "exec-test".into(),
            input_bytes: input,
            mem_budget: mem,
            scratch_budget: scratch,
            merge_workers: 0,
            kernel: alphasort_core::Kernel::Scalar,
        }
    }

    #[test]
    fn one_pass_job_matches_oracle() {
        let (data, _) = generate(GenConfig::datamation(2_000, 11));
        let s = spec(data.len() as u64, 4 << 20, 0);
        assert_eq!(s.plan(), PassPlan::OnePass);
        let (out, stats, plan) =
            run_job(1, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(plan, PassPlan::OnePass);
        assert_eq!(out, oracle(data));
        assert_eq!(stats.records, 2_000);
    }

    #[test]
    fn two_pass_job_under_tight_budget_matches_oracle() {
        let (data, _) = generate(GenConfig::datamation(4_000, 12));
        // Budget far under the input forces the two-pass plan.
        let s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        assert_eq!(s.plan(), PassPlan::TwoPass);
        let (out, _, plan) = run_job(2, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(plan, PassPlan::TwoPass);
        assert_eq!(out, oracle(data));
    }

    #[test]
    fn parallel_merge_stays_byte_identical() {
        let (data, _) = generate(GenConfig::datamation(4_000, 13));
        let mut s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        s.merge_workers = 3;
        let (out, _, _) = run_job(3, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(out, oracle(data));
    }
}
