//! Runs one admitted job through the existing AlphaSort drivers, under its
//! budget, on its own obs track.
//!
//! The executor is deliberately thin: everything hard — run formation,
//! spill, cascade merge, partitioned merge — lives in the drivers. What the
//! daemon adds is *containment*: the job's `mem_budget` becomes the
//! planner's budget (so the one-/two-pass decision is per job, not per
//! process), run length is derated from the same budget, and two-pass
//! scratch goes either to a private in-memory store or to a **namespaced**
//! slice of the daemon's shared striped volume so concurrent jobs cannot
//! collide on run file names.
//!
//! Two service-layer guards wrap the sort itself:
//!
//! * **Cooperative cancellation** — a [`CancelToken`] is checked on every
//!   source chunk and every sink push (both passes of a two-pass sort touch
//!   one or the other continuously), so the watchdog can stop a running job
//!   at IO granularity without unwinding a thread.
//! * **Durable scratch** — with a journal configured, a two-pass job's
//!   striped scratch carries a per-job run manifest (atomic tmp+rename,
//!   per-stride checksums). A daemon kill leaves the sealed runs on the
//!   volume; when the job's idempotency key is re-submitted, the executor
//!   resumes the manifest and the driver re-forms **only** the lost runs
//!   (`SortStats::runs_recovered` / `runs_reformed`). On any *completed*
//!   execution — success or typed failure — the scratch is disposed and the
//!   manifest removed: leaked extents exist only across a kill.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use alphasort_core::driver::{MemScratch, StripeScratch};
use alphasort_core::io::{RecordSink, RecordSource};
use alphasort_core::{ExternalSorter, MemSink, MemSource, PassPlan, SortConfig, SortStats};
use alphasort_dmgen::RECORD_LEN;
use alphasort_obs as obs;
use alphasort_stripefs::Volume;

use crate::job::JobSpec;

/// Where two-pass jobs spill their runs.
#[derive(Clone)]
pub enum ScratchBacking {
    /// Private in-memory scratch per job (tests, benchmarks).
    Memory,
    /// One striped volume shared by every job; per-job namespaces keep run
    /// files apart. The `u64` is the stripe chunk size.
    SharedVolume(Arc<Volume>, u64),
}

/// Why a job was cooperatively canceled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The job's `deadline_ms` elapsed.
    Deadline,
    /// The submitting connection died while the job waited or ran.
    ClientGone,
}

/// A shared cancel flag the watchdog sets and the executor polls. The
/// first cancel wins; later reasons are ignored so the error the client
/// sees matches the event that actually fired.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicU8>);

impl CancelToken {
    /// A fresh, uncanceled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation for `reason` (first caller wins).
    pub fn cancel(&self, reason: CancelReason) {
        let v = match reason {
            CancelReason::Deadline => 1,
            CancelReason::ClientGone => 2,
        };
        let _ = self.0.compare_exchange(0, v, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The reason this token was canceled with, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.0.load(Ordering::Acquire) {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::ClientGone),
            _ => None,
        }
    }

    fn check(&self) -> io::Result<()> {
        match self.reason() {
            None => Ok(()),
            Some(r) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("job canceled cooperatively: {r:?}"),
            )),
        }
    }
}

/// Wraps a source/sink so every chunk boundary is a cancellation point.
struct Guarded<T> {
    inner: T,
    token: CancelToken,
}

impl<S: RecordSource> RecordSource for Guarded<S> {
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.token.check()?;
        self.inner.next_chunk()
    }

    fn size_hint(&self) -> Option<u64> {
        self.inner.size_hint()
    }
}

impl<K: RecordSink> RecordSink for Guarded<K> {
    fn push(&mut self, data: &[u8]) -> io::Result<()> {
        self.token.check()?;
        self.inner.push(data)
    }

    fn complete(&mut self) -> io::Result<u64> {
        self.inner.complete()
    }
}

/// Derive a per-job [`SortConfig`] from the manifest's budgets.
///
/// Run length is a quarter of the memory budget (the rest covers entry
/// arrays, merge buffers, and the planner's 10% slack), clamped to keep
/// tiny budgets sortable and huge ones from forming megaruns that starve
/// the merge of fan-in.
pub fn config_for(spec: &JobSpec) -> SortConfig {
    let run_records = (spec.mem_budget / 4 / RECORD_LEN as u64).clamp(256, 100_000) as usize;
    SortConfig {
        run_records,
        memory_budget: spec.mem_budget,
        merge_workers: spec.merge_workers,
        gather_batch: run_records.min(10_000),
        kernel: spec.kernel,
        layout: spec.layout,
        ..SortConfig::default()
    }
}

/// Sort `input` under `spec`'s budgets. Returns the sorted bytes, the
/// phase stats, and the plan that ran.
///
/// `cancel` is polled at every source/sink chunk. `scratch_manifest`, when
/// set (journaling daemon, shared-volume backing), makes the job's striped
/// scratch durable at that path: if the file already exists the scratch is
/// **resumed** from it — surviving runs verified against their checksums
/// and reused, only the lost input ranges re-formed.
///
/// Observability lands on track `job-<id>` so concurrent jobs' spans and
/// metrics stay separable in the trace.
pub fn run_job(
    id: u64,
    spec: &JobSpec,
    input: Vec<u8>,
    backing: &ScratchBacking,
    cancel: &CancelToken,
    scratch_manifest: Option<&Path>,
) -> io::Result<(Vec<u8>, SortStats, PassPlan)> {
    obs::set_track(&format!("job-{id}"));
    let _job = obs::span(obs::phase::SORTD_JOB);

    let cfg = config_for(spec);
    let sorter = ExternalSorter::new(cfg.clone());
    let mut source = Guarded {
        inner: MemSource::new(input, cfg.gather_batch * RECORD_LEN),
        token: cancel.clone(),
    };
    let mut sink = Guarded {
        inner: MemSink::new(),
        token: cancel.clone(),
    };

    let outcome = {
        let _exec = obs::span(obs::phase::SORTD_EXEC);
        match backing {
            ScratchBacking::Memory => {
                let mut scratch = MemScratch::new(cfg.gather_batch * RECORD_LEN);
                sorter.sort(&mut source, &mut sink, &mut scratch)?
            }
            ScratchBacking::SharedVolume(volume, chunk) => {
                let mut scratch =
                    open_scratch(id, spec, &cfg, volume, *chunk, scratch_manifest)?;
                let outcome = sorter.sort(&mut source, &mut sink, &mut scratch);
                // Reclaim this job's extents on every *completed* execution,
                // success or failure — a typed failure is terminal, so its
                // runs are pure leak. Only a process kill skips this line,
                // and that is exactly the state the manifest exists for.
                scratch.dispose();
                if let Some(path) = scratch_manifest {
                    let _ = std::fs::remove_file(path);
                }
                outcome?
            }
        }
    };

    obs::metrics::counter_add("sortd.exec.bytes", outcome.bytes);
    Ok((sink.inner.into_inner(), outcome.stats, outcome.plan))
}

/// Open the job's namespaced striped scratch: resumed from a surviving
/// manifest when one exists, manifested fresh when the daemon journals,
/// plain when it does not.
fn open_scratch(
    id: u64,
    spec: &JobSpec,
    cfg: &SortConfig,
    volume: &Arc<Volume>,
    chunk: u64,
    manifest: Option<&Path>,
) -> io::Result<StripeScratch> {
    if let Some(path) = manifest {
        if path.exists() {
            match StripeScratch::resume(Arc::clone(volume), path) {
                // The manifest must describe *this* sort: same input, same
                // run geometry. A re-submitted key with a different spec
                // cannot reuse the old runs.
                Ok((s, report))
                    if report.input_bytes == spec.input_bytes
                        && report.run_records == cfg.run_records as u64 =>
                {
                    obs::metrics::counter_add("sortd.scratch.resumed", 1);
                    return Ok(s);
                }
                Ok((stale, _)) => {
                    obs::metrics::counter_add("sortd.scratch.stale", 1);
                    stale.dispose();
                }
                // Unreadable manifest: the runs it described are
                // unreachable anyway; start clean.
                Err(_) => obs::metrics::counter_add("sortd.scratch.stale", 1),
            }
        }
        let mut s = StripeScratch::new(Arc::clone(volume), chunk).named(format!("job{id}-run"));
        s.attach_manifest(path, spec.input_bytes, cfg.run_records as u64)?;
        return Ok(s);
    }
    Ok(StripeScratch::new(Arc::clone(volume), chunk).named(format!("job{id}-run")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alphasort_core::driver::ScratchStore;
    use alphasort_dmgen::{generate, records_of_mut, GenConfig};
    use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk, Storage};
    use std::path::PathBuf;

    fn oracle(mut data: Vec<u8>) -> Vec<u8> {
        records_of_mut(&mut data).sort_by_key(|r| r.key);
        data
    }

    fn spec(input: u64, mem: u64, scratch: u64) -> JobSpec {
        JobSpec {
            name: "exec-test".into(),
            input_bytes: input,
            mem_budget: mem,
            scratch_budget: scratch,
            ..JobSpec::default()
        }
    }

    fn run(id: u64, s: &JobSpec, data: Vec<u8>, b: &ScratchBacking) -> io::Result<(Vec<u8>, SortStats, PassPlan)> {
        run_job(id, s, data, b, &CancelToken::new(), None)
    }

    fn striped_volume(storages: &[Arc<MemStorage>]) -> Arc<Volume> {
        let disks = storages
            .iter()
            .enumerate()
            .map(|(i, st)| {
                SimDisk::new(
                    format!("s{i}"),
                    catalog::uncapped(),
                    Arc::clone(st) as Arc<dyn Storage>,
                    Pacing::Modeled,
                    None,
                )
            })
            .collect();
        Arc::new(Volume::new(Arc::new(IoEngine::new(disks))))
    }

    fn tmp_manifest(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "sortd-exec-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join("job.scratch.json")
    }

    #[test]
    fn one_pass_job_matches_oracle() {
        let (data, _) = generate(GenConfig::datamation(2_000, 11));
        let s = spec(data.len() as u64, 4 << 20, 0);
        assert_eq!(s.plan(), PassPlan::OnePass);
        let (out, stats, plan) = run(1, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(plan, PassPlan::OnePass);
        assert_eq!(out, oracle(data));
        assert_eq!(stats.records, 2_000);
    }

    #[test]
    fn two_pass_job_under_tight_budget_matches_oracle() {
        let (data, _) = generate(GenConfig::datamation(4_000, 12));
        // Budget far under the input forces the two-pass plan.
        let s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        assert_eq!(s.plan(), PassPlan::TwoPass);
        let (out, _, plan) = run(2, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(plan, PassPlan::TwoPass);
        assert_eq!(out, oracle(data));
    }

    #[test]
    fn parallel_merge_stays_byte_identical() {
        let (data, _) = generate(GenConfig::datamation(4_000, 13));
        let mut s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        s.merge_workers = 3;
        let (out, _, _) = run(3, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(out, oracle(data));
    }

    #[test]
    fn varlen_job_sorts_string_keys_end_to_end() {
        use alphasort_core::RecordLayout;
        use alphasort_dmgen::{generate_varlen, var_records_of, TextCorpus, VarGenConfig};

        let data = generate_varlen(VarGenConfig {
            records: 2_000,
            seed: 16,
            corpus: TextCorpus::Urls,
        });
        let recs = var_records_of(&data).unwrap();
        let mut idx: Vec<usize> = (0..recs.len()).collect();
        idx.sort_by(|&a, &b| recs[a].key().cmp(recs[b].key()).then(a.cmp(&b)));
        let mut want = Vec::with_capacity(data.len());
        for i in idx {
            want.extend_from_slice(recs[i].frame());
        }

        let mut s = spec(data.len() as u64, 4 << 20, 0);
        s.layout = RecordLayout::VarLen;
        s.merge_workers = 2;
        s.validate(8 << 20, 32 << 20).unwrap();
        let (out, stats, _) = run(9, &s, data.clone(), &ScratchBacking::Memory).unwrap();
        assert_eq!(out, want);
        assert_eq!(stats.records, 2_000);
    }

    #[test]
    fn pre_canceled_token_stops_the_job_at_the_first_chunk() {
        let (data, _) = generate(GenConfig::datamation(2_000, 14));
        let s = spec(data.len() as u64, 4 << 20, 0);
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        // A later ClientGone must not overwrite the original reason.
        token.cancel(CancelReason::ClientGone);
        let err = run_job(4, &s, data, &ScratchBacking::Memory, &token, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(token.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn manifested_job_resumes_surviving_runs_after_a_crash_shaped_stop() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let path = tmp_manifest("resume");
        let (data, _) = generate(GenConfig::datamation(4_000, 15));
        let s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        assert_eq!(s.plan(), PassPlan::TwoPass);

        // First attempt: form a couple of runs, then "crash" — the Guarded
        // source trips the cancel token partway through pass 1, and the
        // scratch is NOT disposed because run_job's disposal only runs on
        // sorter completion... it does run on error. So fabricate the crash
        // below run_job: drive the scratch directly like a killed daemon.
        {
            let volume = striped_volume(&storages);
            let cfg = config_for(&s);
            let mut scratch =
                StripeScratch::new(Arc::clone(&volume), 64 << 10).named("job9-run");
            scratch.attach_manifest(&path, s.input_bytes, cfg.run_records as u64).unwrap();
            let run_bytes = cfg.run_records * RECORD_LEN;
            let mut sorted_prefix = data[..run_bytes].to_vec();
            records_of_mut(&mut sorted_prefix).sort_by_key(|r| r.key);
            let mut w = scratch.create_run(run_bytes as u64).unwrap();
            use alphasort_core::io::RecordSink as _;
            w.push(&sorted_prefix).unwrap();
            scratch.seal_run(w).unwrap();
            // Dropped without dispose: the kill.
        }

        // Retry on a fresh volume over the surviving storages.
        let volume = striped_volume(&storages);
        let backing = ScratchBacking::SharedVolume(volume, 64 << 10);
        let (out, stats, plan) =
            run_job(10, &s, data.clone(), &backing, &CancelToken::new(), Some(&path)).unwrap();
        assert_eq!(plan, PassPlan::TwoPass);
        assert_eq!(out, oracle(data));
        assert_eq!(stats.runs_recovered, 1, "the sealed run must be reused");
        assert!(stats.runs_reformed >= 1, "lost ranges must be re-formed");
        assert!(!path.exists(), "manifest removed after completion");
    }

    #[test]
    fn stale_manifest_with_wrong_geometry_is_discarded_not_reused() {
        let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
        let path = tmp_manifest("stale");
        let (data, _) = generate(GenConfig::datamation(4_000, 16));
        let s = spec(data.len() as u64, 128 << 10, data.len() as u64);
        {
            // A manifest from a *different* sort (half the input).
            let volume = striped_volume(&storages);
            let mut scratch = StripeScratch::new(volume, 64 << 10).named("job11-run");
            scratch.attach_manifest(&path, s.input_bytes / 2, 99).unwrap();
        }
        let volume = striped_volume(&storages);
        let backing = ScratchBacking::SharedVolume(Arc::clone(&volume), 64 << 10);
        let (out, stats, _) =
            run_job(12, &s, data.clone(), &backing, &CancelToken::new(), Some(&path)).unwrap();
        assert_eq!(out, oracle(data));
        assert_eq!(stats.runs_recovered, 0, "stale runs must not be trusted");
    }
}
