//! sortd: sort-as-a-service on top of the AlphaSort pipeline.
//!
//! A long-running daemon that accepts concurrent sort jobs over TCP,
//! reusing netsort's checksummed [`Frame`](alphasort_netsort::Frame)
//! transport. Each job arrives as a *manifest* — input size plus memory
//! and scratch budgets — and is carved out of one global resource
//! [`pool`]. When the pool is exhausted, jobs wait in a FIFO queue with
//! **aging** (deterministic bypass counting, not clocks) so small jobs can
//! backfill around a big one without starving it; past the queue bound the
//! daemon sheds load with a typed, retryable `backpressure` error.
//!
//! Module map:
//! * [`job`] — manifests, job states, the typed error vocabulary,
//! * [`pool`] — budget accounting (reserve/release, high-water marks),
//! * [`admission`] — the FIFO-with-aging state machine,
//! * [`proto`] — the ctrl/payload channel convention over netsort frames,
//! * [`executor`] — per-job runs through the one-/two-pass drivers,
//! * [`journal`] — write-ahead job journal for crash recovery,
//! * [`server`] — accept loop, dispatch, watchdog, graceful drain,
//! * [`client`] — a blocking client with honest retry typing,
//! * [`telemetry`] — always-on uptime + per-job latency histograms.

pub mod admission;
pub mod client;
pub mod executor;
pub mod job;
pub mod journal;
pub mod pool;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use admission::{Admission, AdmissionConfig, Offer};
pub use client::{Client, ClientError, RetryPolicy, SubmitResult};
pub use executor::{CancelReason, CancelToken, ScratchBacking};
pub use alphasort_core::Kernel;
pub use job::{JobSpec, JobState, SortdError, MIN_JOB_MEM};
pub use journal::{Journal, JournalRecord, Replay};
pub use pool::{Pool, PoolConfig};
pub use server::{Sortd, SortdConfig};
pub use telemetry::Telemetry;
