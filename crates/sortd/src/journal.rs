//! Write-ahead job journal: the daemon's durable memory of every job it
//! accepted, keyed by idempotency key.
//!
//! One minijson file per job, rewritten **atomically** (temp file + rename,
//! the same discipline as stripefs run manifests) at every lifecycle
//! transition, so a SIGKILL at any instant leaves each job's record either
//! at its previous state or its new one — never torn. The lifecycle a
//! record walks:
//!
//! ```text
//! accepted ──▶ running ──▶ done | failed | canceled     (terminal)
//!     │            │
//!     └────────────┴──▶ interrupted       (stamped at restart replay)
//! ```
//!
//! `running` records of two-pass jobs carry a `scratch_manifest` pointer:
//! the per-job stripefs run manifest that lists every **sealed** run with
//! its per-stride checksums. The journal itself never records individual
//! runs — "sealed-runs(prefix)" granularity lives in the scratch manifest,
//! which is also written atomically after every seal. Between the two
//! files, restart recovery knows exactly which jobs were in flight and
//! which of their pass-1 runs survived.
//!
//! # Record schema (wire-stable contract, version 1)
//!
//! ```text
//! { "version": 1,
//!   "key": "...",                  // idempotency key (client or synthetic)
//!   "job_id": N,
//!   "state": "accepted" | "running" | "done" | "failed" | "canceled"
//!          | "interrupted",
//!   "spec": { ...job manifest... },// JobSpec::to_json, for resume checks
//!   "records": N,                  // sorted records (done only)
//!   "error": "code",               // stable error code (failed/canceled)
//!   "scratch_manifest": "path" }   // two-pass runs manifest (if any)
//! ```
//!
//! Renaming a field is a breaking change: a restarted daemon must be able
//! to replay a journal written by the previous binary.
//!
//! Keys are arbitrary client strings; the journal never trusts them as
//! file names. Each record lives at `job-<sanitized>-<fnv64>.json` where
//! the FNV-1a hash of the *full* key disambiguates keys that sanitize
//! identically. Keys starting with `anon-` are reserved for the daemon's
//! synthetic keys (jobs submitted without an `idem_key` still journal, so
//! their scratch can be swept after a crash — they just can't dedupe).

use std::io;
use std::path::{Path, PathBuf};

use alphasort_minijson::Json;

use crate::job::JobSpec;

/// Journal schema version; bump only with a replay-compatible migration.
const VERSION: u64 = 1;

/// One job's journaled lifecycle state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Idempotency key (client-supplied, or synthetic `anon-job-<id>`).
    pub key: String,
    /// Daemon-assigned job id (ids keep rising across restarts).
    pub job_id: u64,
    /// Lifecycle state, one of the names in the module doc.
    pub state: String,
    /// The manifest the job was accepted with; resume validates the
    /// re-submitted spec against this before reattaching scratch.
    pub spec: JobSpec,
    /// Records sorted (meaningful for `done`).
    pub records: u64,
    /// Stable error code (`failed`/`canceled` states).
    pub error: Option<String>,
    /// Path of the job's stripefs scratch manifest, when the job spilled
    /// pass-1 runs that could survive a kill.
    pub scratch_manifest: Option<PathBuf>,
}

impl JournalRecord {
    /// A fresh `accepted` record for `key`/`job_id` under `spec`.
    pub fn accepted(key: String, job_id: u64, spec: JobSpec) -> JournalRecord {
        JournalRecord {
            key,
            job_id,
            state: "accepted".into(),
            spec,
            records: 0,
            error: None,
            scratch_manifest: None,
        }
    }

    /// Whether this record's state is terminal (the job can be answered
    /// from the journal alone — the at-most-once dedupe set).
    pub fn terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "canceled")
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version".into(), Json::from(VERSION)),
            ("key".into(), Json::from(self.key.as_str())),
            ("job_id".into(), Json::from(self.job_id)),
            ("state".into(), Json::from(self.state.as_str())),
            ("spec".into(), self.spec.to_json()),
            ("records".into(), Json::from(self.records)),
        ];
        if let Some(code) = &self.error {
            fields.push(("error".into(), Json::from(code.as_str())));
        }
        if let Some(p) = &self.scratch_manifest {
            fields.push((
                "scratch_manifest".into(),
                Json::from(p.display().to_string().as_str()),
            ));
        }
        Json::Obj(fields)
    }

    fn from_json(doc: &Json) -> Result<JournalRecord, String> {
        let version = doc.field_u64("version").map_err(|e| e.to_string())?;
        if version != VERSION {
            return Err(format!("unsupported journal record version {version}"));
        }
        let spec = doc
            .get("spec")
            .ok_or("record missing `spec`")
            .and_then(|v| JobSpec::from_json(v).map_err(|_| "bad `spec`"))
            .map_err(|e| e.to_string())?;
        Ok(JournalRecord {
            key: doc.field_str("key").map_err(|e| e.to_string())?.to_string(),
            job_id: doc.field_u64("job_id").map_err(|e| e.to_string())?,
            state: doc.field_str("state").map_err(|e| e.to_string())?.to_string(),
            spec,
            records: doc.field_u64("records").unwrap_or(0),
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
            scratch_manifest: doc
                .get("scratch_manifest")
                .and_then(Json::as_str)
                .map(PathBuf::from),
        })
    }
}

/// What a replay found on disk.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every parseable record, terminal and interrupted alike.
    pub records: Vec<JournalRecord>,
    /// Files that would not parse (corrupt or foreign); left untouched on
    /// disk, reported so the operator can inspect them.
    pub corrupt: Vec<String>,
}

/// The write-ahead journal: a directory of per-job record files.
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Open (creating if needed) the journal directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Journal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Journal { dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// FNV-1a over the full key: disambiguates keys whose sanitized forms
    /// collide, and bounds the file-name length contribution of the key.
    fn fnv64(key: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    fn file_stem(key: &str) -> String {
        let safe: String = key
            .chars()
            .take(48)
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        format!("job-{safe}-{:016x}", Self::fnv64(key))
    }

    /// Path of `key`'s record file.
    pub fn record_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.json", Self::file_stem(key)))
    }

    /// Path where `key`'s job should put its stripefs scratch manifest —
    /// next to the journal record, so journal dir + scratch volume are the
    /// whole durable state.
    pub fn scratch_manifest_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.scratch.json", Self::file_stem(key)))
    }

    /// Forget `key` entirely — used when a job settles *without* an
    /// execution outcome (load-shed, drain, client gone before running):
    /// the key stays reusable and a replay must not see the job at all.
    /// Removing a record that was never written is not an error.
    pub fn remove(&self, key: &str) -> io::Result<()> {
        for path in [self.record_path(key), self.scratch_manifest_path(key)] {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Persist `rec`, atomically replacing any previous state for its key.
    pub fn record(&self, rec: &JournalRecord) -> io::Result<()> {
        let path = self.record_path(&rec.key);
        let mut tmp = path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, rec.to_json().dump_pretty())?;
        std::fs::rename(&tmp, &path)
    }

    /// Read every record back. Corrupt files are reported, not fatal: one
    /// torn foreign file must not brick the daemon's restart. `.tmp`
    /// leftovers from a kill mid-rename are ignored (their final rename
    /// never happened, so the previous state of that key is authoritative).
    pub fn replay(&self) -> io::Result<Replay> {
        let mut out = Replay::default();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("job-") || !name.ends_with(".json") {
                continue;
            }
            if name.ends_with(".scratch.json") {
                continue;
            }
            let parsed = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
                .and_then(|doc| JournalRecord::from_json(&doc));
            match parsed {
                Ok(rec) => out.records.push(rec),
                Err(e) => out.corrupt.push(format!("{name}: {e}")),
            }
        }
        // Deterministic replay order regardless of directory iteration.
        out.records.sort_by_key(|r| r.job_id);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "sortd-journal-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn spec() -> JobSpec {
        JobSpec {
            name: "j".into(),
            input_bytes: 1_000,
            mem_budget: 1 << 20,
            scratch_budget: 2_000,
            deadline_ms: 750,
            ..JobSpec::default()
        }
    }

    #[test]
    fn record_roundtrips_through_every_transition() {
        let j = Journal::open(tmp_dir("roundtrip")).unwrap();
        let mut rec = JournalRecord::accepted("k-1".into(), 7, spec());
        j.record(&rec).unwrap();
        rec.state = "running".into();
        rec.scratch_manifest = Some(j.scratch_manifest_path("k-1"));
        j.record(&rec).unwrap();
        rec.state = "done".into();
        rec.records = 10;
        j.record(&rec).unwrap();

        let replay = j.replay().unwrap();
        assert!(replay.corrupt.is_empty());
        assert_eq!(replay.records, vec![rec.clone()]);
        assert!(replay.records[0].terminal());
        // The failure shape keeps its code too.
        rec.state = "failed".into();
        rec.error = Some("deadline_exceeded".into());
        j.record(&rec).unwrap();
        let replay = j.replay().unwrap();
        assert_eq!(replay.records[0].error.as_deref(), Some("deadline_exceeded"));
    }

    #[test]
    fn hostile_keys_stay_inside_the_journal_dir_and_stay_distinct() {
        let j = Journal::open(tmp_dir("hostile")).unwrap();
        // Path-traversal characters sanitize away; the hash keeps keys
        // that sanitize identically from sharing a file.
        let a = "../../etc/passwd";
        let b = "..%..%etc%passwd";
        for (id, key) in [(1u64, a), (2, b)] {
            j.record(&JournalRecord::accepted(key.into(), id, spec())).unwrap();
        }
        for key in [a, b] {
            let p = j.record_path(key);
            assert!(p.starts_with(j.dir()), "{p:?} escaped the journal dir");
            assert!(p.exists());
        }
        assert_ne!(j.record_path(a), j.record_path(b));
        assert_eq!(j.replay().unwrap().records.len(), 2);
    }

    #[test]
    fn corrupt_records_are_reported_not_fatal() {
        let j = Journal::open(tmp_dir("corrupt")).unwrap();
        j.record(&JournalRecord::accepted("ok".into(), 1, spec())).unwrap();
        std::fs::write(j.dir().join("job-torn-0000.json"), "{ not json").unwrap();
        // A stale .tmp from a kill mid-rename is ignored entirely.
        std::fs::write(j.dir().join("job-x-1.json.tmp"), "garbage").unwrap();
        let replay = j.replay().unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.corrupt.len(), 1);
        assert!(replay.corrupt[0].contains("job-torn"), "{:?}", replay.corrupt);
    }
}
