//! Daemon-owned service telemetry: uptime and per-job latency histograms.
//!
//! The obs crate's process-global metrics store only records when tracing
//! was explicitly enabled — right for near-zero-overhead CLI runs, wrong
//! for a service whose operators expect `stats` to answer "what are my
//! latencies" at any moment. So the daemon owns its histograms directly:
//! a [`Telemetry`] lives inside the server's `Core` (under the same mutex
//! the admission state already takes per job), reusing
//! [`obs::Histogram`](alphasort_obs::Histogram) as the data structure but
//! recording unconditionally. Three per-job latencies are tracked, all in
//! microseconds:
//!
//! * `queue_wait_us` — time parked in the admission queue (0 when admitted
//!   immediately, so the count equals jobs that ran),
//! * `exec_us` — the sort itself, budget held,
//! * `e2e_us` — request receipt (manifest parsed) to result settled; the
//!   daemon-side view of what a client measures around `submit`, minus
//!   connect and response streaming.
//!
//! Histograms are recorded for every job that ran, successes and execution
//! failures alike, and are never reset — drain stops admission, not
//! accounting, so post-drain `stats` still reports the service's full
//! latency history (the fleet test pins this).

use std::time::{Duration, Instant};

use alphasort_minijson::Json;
use alphasort_obs::{export::histogram_summary, Histogram};

/// The daemon's always-on metrics: start time plus latency histograms.
pub struct Telemetry {
    started: Instant,
    /// Time jobs spent parked in the admission queue, in microseconds.
    pub queue_wait_us: Histogram,
    /// Sort execution time under a reserved budget, in microseconds.
    pub exec_us: Histogram,
    /// Manifest-parsed to result-settled time, in microseconds.
    pub e2e_us: Histogram,
}

impl Telemetry {
    /// Fresh telemetry; the daemon's uptime clock starts now.
    pub fn new() -> Telemetry {
        Telemetry {
            started: Instant::now(),
            queue_wait_us: Histogram::default(),
            exec_us: Histogram::default(),
            e2e_us: Histogram::default(),
        }
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Record one finished job's three latencies.
    pub fn record_job(&mut self, queue_wait: Duration, exec: Duration, e2e: Duration) {
        self.queue_wait_us.record(queue_wait.as_micros() as u64);
        self.exec_us.record(exec.as_micros() as u64);
        self.e2e_us.record(e2e.as_micros() as u64);
    }

    /// The `latency` section of the `stats` wire doc: one
    /// count/mean/p50/p90/p99/max summary per histogram (see
    /// [`proto`](crate::proto) for the schema).
    pub fn summaries(&self) -> Json {
        Json::Obj(vec![
            ("queue_wait_us".into(), histogram_summary(&self.queue_wait_us)),
            ("exec_us".into(), histogram_summary(&self.exec_us)),
            ("e2e_us".into(), histogram_summary(&self.e2e_us)),
        ])
    }

    /// The full-fidelity histograms, named as they appear in the `metrics`
    /// wire doc's `histograms` section.
    pub fn histograms(&self) -> [(&'static str, &Histogram); 3] {
        [
            ("sortd.queue_wait_us", &self.queue_wait_us),
            ("sortd.exec_us", &self.exec_us),
            ("sortd.e2e_us", &self.e2e_us),
        ]
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_job_lands_in_all_three_histograms() {
        let mut t = Telemetry::new();
        t.record_job(
            Duration::from_micros(100),
            Duration::from_micros(2_000),
            Duration::from_micros(2_150),
        );
        t.record_job(Duration::ZERO, Duration::from_micros(900), Duration::from_micros(950));
        assert_eq!(t.queue_wait_us.count(), 2);
        assert_eq!(t.exec_us.count(), 2);
        assert_eq!(t.e2e_us.count(), 2);
        // The immediate admit recorded a true zero wait.
        assert_eq!(t.queue_wait_us.min(), Some(0));

        let doc = t.summaries();
        let e2e = doc.get("e2e_us").unwrap();
        assert_eq!(e2e.field_u64("count").unwrap(), 2);
        assert_eq!(e2e.field_u64("max").unwrap(), 2_150);
        assert!(e2e.field_f64("p50").unwrap() > 0.0);
    }

    #[test]
    fn histogram_names_are_the_wire_names() {
        let t = Telemetry::new();
        let names: Vec<&str> = t.histograms().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["sortd.queue_wait_us", "sortd.exec_us", "sortd.e2e_us"]
        );
    }
}
