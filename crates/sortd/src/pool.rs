//! The global resource pool: memory and scratch bytes every admitted job's
//! budget is carved from.
//!
//! The pool is plain accounting — reservation and release of two scalar
//! capacities — kept separate from [`admission`](crate::admission) policy
//! so the invariant the fleet test pins ("pool accounting returns to zero
//! after drain") is checkable on one small struct. Gauges mirror the pool
//! into obs (`sortd.pool.*`) whenever observability is enabled.

use alphasort_obs as obs;

/// Pool capacities, fixed at daemon start.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Total memory bytes jobs may hold concurrently.
    pub mem_total: u64,
    /// Total scratch bytes jobs may hold concurrently.
    pub scratch_total: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            mem_total: 256 << 20,
            scratch_total: 1 << 30,
        }
    }
}

/// Live pool accounting.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    mem_total: u64,
    scratch_total: u64,
    mem_used: u64,
    scratch_used: u64,
    /// High-water marks, for utilization reporting.
    mem_hwm: u64,
    scratch_hwm: u64,
}

impl Pool {
    /// Empty pool with the given capacities.
    pub fn new(cfg: PoolConfig) -> Self {
        Pool {
            mem_total: cfg.mem_total,
            scratch_total: cfg.scratch_total,
            mem_used: 0,
            scratch_used: 0,
            mem_hwm: 0,
            scratch_hwm: 0,
        }
    }

    /// Total memory capacity.
    pub fn mem_total(&self) -> u64 {
        self.mem_total
    }

    /// Total scratch capacity.
    pub fn scratch_total(&self) -> u64 {
        self.scratch_total
    }

    /// Memory bytes currently reserved.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Scratch bytes currently reserved.
    pub fn scratch_used(&self) -> u64 {
        self.scratch_used
    }

    /// Highest concurrent memory reservation seen.
    pub fn mem_hwm(&self) -> u64 {
        self.mem_hwm
    }

    /// Highest concurrent scratch reservation seen.
    pub fn scratch_hwm(&self) -> u64 {
        self.scratch_hwm
    }

    /// Whether nothing is reserved (the post-drain invariant).
    pub fn idle(&self) -> bool {
        self.mem_used == 0 && self.scratch_used == 0
    }

    /// Whether a `(mem, scratch)` budget fits right now.
    pub fn fits(&self, mem: u64, scratch: u64) -> bool {
        self.mem_used + mem <= self.mem_total && self.scratch_used + scratch <= self.scratch_total
    }

    /// Reserve a budget that [`fits`](Self::fits).
    ///
    /// # Panics
    /// If the budget does not fit — admission must check first; reserving
    /// past the total would silently overcommit the pool.
    pub fn reserve(&mut self, mem: u64, scratch: u64) {
        assert!(self.fits(mem, scratch), "reserve past pool capacity");
        self.mem_used += mem;
        self.scratch_used += scratch;
        self.mem_hwm = self.mem_hwm.max(self.mem_used);
        self.scratch_hwm = self.scratch_hwm.max(self.scratch_used);
        self.publish();
    }

    /// Return a budget previously reserved.
    ///
    /// # Panics
    /// If more is released than is reserved — a double release is an
    /// accounting bug worth failing loudly on.
    pub fn release(&mut self, mem: u64, scratch: u64) {
        assert!(
            mem <= self.mem_used && scratch <= self.scratch_used,
            "release of {mem}/{scratch} exceeds reservations {}/{}",
            self.mem_used,
            self.scratch_used
        );
        self.mem_used -= mem;
        self.scratch_used -= scratch;
        self.publish();
    }

    /// Mirror the pool into obs gauges.
    fn publish(&self) {
        obs::metrics::gauge_set("sortd.pool.mem_in_use", self.mem_used as i64);
        obs::metrics::gauge_set("sortd.pool.scratch_in_use", self.scratch_used as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip_returns_to_zero() {
        let mut p = Pool::new(PoolConfig {
            mem_total: 100,
            scratch_total: 50,
        });
        assert!(p.idle());
        assert!(p.fits(60, 50));
        p.reserve(60, 50);
        assert!(!p.fits(41, 0), "memory would overcommit");
        assert!(!p.fits(0, 1), "scratch would overcommit");
        p.reserve(40, 0);
        assert_eq!(p.mem_used(), 100);
        p.release(60, 50);
        p.release(40, 0);
        assert!(p.idle());
        assert_eq!(p.mem_hwm(), 100);
        assert_eq!(p.scratch_hwm(), 50);
    }

    #[test]
    #[should_panic(expected = "reserve past pool capacity")]
    fn overcommit_panics() {
        let mut p = Pool::new(PoolConfig {
            mem_total: 10,
            scratch_total: 10,
        });
        p.reserve(11, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds reservations")]
    fn double_release_panics() {
        let mut p = Pool::new(PoolConfig {
            mem_total: 10,
            scratch_total: 10,
        });
        p.reserve(5, 5);
        p.release(5, 5);
        p.release(1, 0);
    }
}
