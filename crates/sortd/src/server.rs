//! The daemon: accept loop, per-connection request dispatch, admission
//! wiring, crash recovery, watchdog, and graceful drain.
//!
//! Threading model — one thread per connection, and the job *runs on the
//! connection thread that submitted it*. Admission is the concurrency
//! limiter: a job holds a thread while queued (parked on a channel, not
//! spinning) and while running. Pool *budget* is held only while running,
//! but a queued job is not free: its full input payload already sits in
//! daemon memory (the payload is read before the admission offer, so a
//! slow client can never stall the admission lock), and that residency is
//! outside pool accounting. Per job it is bounded by manifest validation
//! (an input can't exceed the larger pool total), so the worst case is
//! `queue_bound × max input size` — size `queue_bound` with that product
//! in mind, not just queue-depth taste.
//! The shared `Core` behind one mutex holds the admission state machine,
//! the job table, and the waiter channels; the sort itself never runs
//! under the lock.
//!
//! **Durability** (`journal` configured): every accepted job writes a
//! write-ahead record (see [`crate::journal`]) at each lifecycle
//! transition, keyed by its idempotency key (client-supplied, or a
//! synthetic `anon-job-<id>`). Restart replays the journal: terminal jobs
//! become the dedupe set (re-submitting their key answers from the record
//! without re-executing — at-most-once), non-terminal jobs are stamped
//! `interrupted` and, when their scratch manifest survived, wait in a
//! pending-recovery set. Re-submitting an interrupted key re-runs the job
//! with its scratch *resumed*, so only lost runs re-form; interrupted
//! scratch nobody reclaims within `recovered_grace` is disposed by the
//! watchdog (no surviving client).
//!
//! **Watchdog** — a single daemon thread that, each tick, (1) cancels jobs
//! past their `deadline_ms` (queued jobs fail immediately with the
//! non-retryable `deadline_exceeded` code; running jobs get a cooperative
//! [`CancelToken`] the executor polls at chunk granularity), (2) sweeps
//! jobs whose submitting connection died (queued: settled unrun, key
//! freed; running: cooperative cancel), and (3) disposes unreclaimed
//! recovered scratch after the grace period.
//!
//! Drain (`drain()` on the handle, or a `{"type":"drain"}` request):
//! 1. stop admitting — every queued job fails with the retryable
//!    `draining` error and its waiter wakes,
//! 2. running jobs finish normally,
//! 3. the accept loop stops and the listener closes (new connects are
//!    refused),
//! 4. drain returns once the pool is back to zero.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use alphasort_core::driver::StripeScratch;
use alphasort_minijson::Json;
use alphasort_netsort::AcceptLoop;
use alphasort_obs as obs;

use crate::admission::{Admission, AdmissionConfig, Offer};
use crate::executor::{run_job, CancelReason, CancelToken, ScratchBacking};
use crate::job::{JobSpec, JobState, SortdError};
use crate::journal::{Journal, JournalRecord};
use crate::pool::PoolConfig;
use crate::proto;
use crate::telemetry::Telemetry;

/// Daemon configuration.
#[derive(Clone)]
pub struct SortdConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub listen: String,
    /// Resource pool capacities.
    pub pool: PoolConfig,
    /// Queue bound and aging limit.
    pub admission: AdmissionConfig,
    /// Where two-pass jobs spill.
    pub backing: ScratchBacking,
    /// Socket read timeout, so a stalled client cannot pin a connection
    /// thread forever mid-request.
    pub client_read_timeout: Duration,
    /// Socket write timeout, so a peer that stops *reading* cannot pin a
    /// connection thread mid-response (large result/stats writes block
    /// once the kernel send buffer fills).
    pub client_write_timeout: Duration,
    /// Write-ahead journal directory; `None` runs the daemon volatile
    /// (in-memory idempotency only, no crash recovery).
    pub journal: Option<PathBuf>,
    /// Watchdog tick interval (deadlines, dead-client sweep, scratch
    /// grace sweep).
    pub watchdog_interval: Duration,
    /// How long recovered (interrupted) scratch waits for its key to be
    /// re-submitted before the watchdog disposes it.
    pub recovered_grace: Duration,
}

impl Default for SortdConfig {
    fn default() -> Self {
        SortdConfig {
            listen: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
            admission: AdmissionConfig::default(),
            backing: ScratchBacking::Memory,
            client_read_timeout: Duration::from_secs(30),
            client_write_timeout: Duration::from_secs(30),
            journal: None,
            watchdog_interval: Duration::from_millis(25),
            recovered_grace: Duration::from_secs(60),
        }
    }
}

/// What a queued submitter is woken with.
enum Wake {
    /// Budget reserved; go run.
    Admitted,
    /// The job will never run (drain, cancel, deadline, dead client).
    Failed(SortdError),
}

/// Everything the service remembers about one job.
struct JobRecord {
    name: String,
    state: JobState,
    /// Error code, for status responses after failure. `"interrupted"`
    /// marks a journal-replayed job whose execution a kill cut short.
    error: Option<String>,
    /// Records sorted (terminal `done` jobs) — the duplicate answer.
    records: u64,
    /// The job's idempotency key (client or synthetic), when tracked.
    key: Option<String>,
}

/// Service counters, reported in the stats snapshot.
#[derive(Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    done: u64,
    failed: u64,
    rejected: u64,
    canceled: u64,
    /// Submits answered from a terminal record without executing.
    duplicates: u64,
    /// Journaled jobs found non-terminal at restart.
    jobs_recovered: u64,
    /// Sealed pass-1 runs reused from recovered scratch.
    runs_recovered: u64,
    /// Input ranges re-formed because their runs did not survive.
    runs_reformed: u64,
    /// Recovered scratch volumes disposed unreclaimed (no surviving client).
    scratch_disposed: u64,
    /// Jobs the watchdog canceled past their deadline.
    deadline_kills: u64,
}

/// Watchdog-visible state of one live (queued or running) job.
struct JobWatch {
    /// Absolute deadline, when the manifest set `deadline_ms`. Cleared
    /// after the cancel fires so it is counted once.
    deadline: Option<Instant>,
    /// The manifest's `deadline_ms`, for the error the client sees.
    deadline_ms: u64,
    /// The submitting connection, registered after the ack write, so the
    /// watchdog can detect a dead client with a nonblocking peek. The
    /// submit thread never touches the socket while this is set (it is
    /// parked or sorting, and settle removes the watch under the lock
    /// before the result write), so the peek's nonblocking toggle cannot
    /// race a blocking write.
    conn: Option<TcpStream>,
    /// `Some` once the job is running — the cooperative cancel path.
    /// `None` while queued (queued jobs are killed via `cancel_queued`).
    token: Option<CancelToken>,
    /// The job's journal record, for terminal writes on watchdog kills.
    rec: Option<JournalRecord>,
}

/// Shared mutable state.
struct Core {
    admission: Admission,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    running: usize,
    /// Connection-handler threads currently alive; `wait_drained` holds
    /// the process open until responses (the drain ack included) flush.
    active_conns: usize,
    counters: Counters,
    waiters: HashMap<u64, Sender<Wake>>,
    /// Idempotency key → job id. A value of 0 is an in-flight
    /// reservation (ids start at 1): the key's submit is between its
    /// dedupe check and its id allocation.
    idem: HashMap<String, u64>,
    /// Live jobs the watchdog oversees.
    watch: HashMap<u64, JobWatch>,
    /// Interrupted keys with surviving scratch, waiting to be re-claimed;
    /// the value is when recovery saw them (grace-sweep clock).
    recovered: HashMap<String, Instant>,
    /// Always-on service telemetry: uptime + latency histograms.
    telemetry: Telemetry,
}

impl Core {
    /// Mark `promoted` jobs running and wake their parked submitters.
    fn wake_promoted(&mut self, promoted: Vec<u64>) {
        for id in promoted {
            if let Some(rec) = self.jobs.get_mut(&id) {
                rec.state = JobState::Running;
            }
            self.running += 1;
            if let Some(tx) = self.waiters.remove(&id) {
                let _ = tx.send(Wake::Admitted);
            }
        }
    }
}

/// Remove every live trace of a job that settled *without* an execution
/// outcome (load-shed, drain, client gone before a result): watchdog
/// watch, in-flight key, journal record. The key becomes immediately
/// reusable — at-most-once only pins keys whose jobs actually ran to a
/// terminal state.
fn forget_unrun(core: &mut Core, journal: &Option<Journal>, id: u64) {
    core.watch.remove(&id);
    let key = core.jobs.get(&id).and_then(|r| r.key.clone());
    if let Some(key) = key {
        if core.idem.get(&key) == Some(&id) {
            core.idem.remove(&key);
        }
        if let Some(j) = journal {
            let _ = j.remove(&key);
        }
    }
}

struct State {
    core: Mutex<Core>,
    /// Signaled when `running` drops — drain waits here.
    cv: Condvar,
    backing: ScratchBacking,
    read_timeout: Duration,
    write_timeout: Duration,
    /// The write-ahead journal, when durability is configured.
    journal: Option<Journal>,
    /// The acceptor, stoppable from drain on any thread.
    acceptor: Mutex<Option<AcceptLoop>>,
}

/// Handle to a running daemon.
pub struct Sortd {
    state: Arc<State>,
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl Sortd {
    /// Bind, replay the journal (when configured), spawn the watchdog and
    /// the accept loop, and return the handle.
    pub fn start(cfg: SortdConfig) -> io::Result<Sortd> {
        let journal = match &cfg.journal {
            Some(dir) => Some(Journal::open(dir.clone())?),
            None => None,
        };
        let mut core = Core {
            admission: Admission::new(cfg.pool, cfg.admission),
            jobs: BTreeMap::new(),
            next_id: 1,
            running: 0,
            active_conns: 0,
            counters: Counters::default(),
            waiters: HashMap::new(),
            idem: HashMap::new(),
            watch: HashMap::new(),
            recovered: HashMap::new(),
            telemetry: Telemetry::new(),
        };
        if let Some(j) = &journal {
            replay_journal(j, &mut core)?;
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        let state = Arc::new(State {
            core: Mutex::new(core),
            cv: Condvar::new(),
            backing: cfg.backing.clone(),
            read_timeout: cfg.client_read_timeout,
            write_timeout: cfg.client_write_timeout,
            journal,
            acceptor: Mutex::new(None),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let wd_state = Arc::clone(&state);
        let wd_stop = Arc::clone(&shutdown);
        let (interval, grace) = (cfg.watchdog_interval, cfg.recovered_grace);
        let watchdog = thread::spawn(move || {
            while !wd_stop.load(Ordering::Relaxed) {
                thread::sleep(interval);
                if wd_stop.load(Ordering::Relaxed) {
                    break;
                }
                watchdog_pass(&wd_state, grace);
            }
        });
        let for_conns = Arc::clone(&state);
        let acceptor = AcceptLoop::spawn(listener, move |stream| {
            let st = Arc::clone(&for_conns);
            st.core.lock().unwrap().active_conns += 1;
            thread::spawn(move || {
                let _ = serve_connection(stream, &st);
                st.core.lock().unwrap().active_conns -= 1;
                st.cv.notify_all();
            });
        })?;
        let addr = acceptor.addr();
        *state.acceptor.lock().unwrap() = Some(acceptor);
        Ok(Sortd {
            state,
            addr,
            shutdown,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (resolved port when `listen` used port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful drain; returns `(total_done, failed_queued)` once every
    /// running job has finished and the pool is idle. `total_done` is the
    /// daemon's *lifetime* completed-job count (not just jobs that
    /// finished during this drain); `failed_queued` is how many queued
    /// jobs this drain failed with the retryable `draining` error.
    pub fn drain(&self) -> (u64, u64) {
        drain_impl(&self.state)
    }

    /// Block until some client (or another thread on this handle) drains
    /// the daemon — the `serve` subcommand's main-thread park.
    pub fn wait_drained(&self) {
        let mut core = self.state.core.lock().unwrap();
        while !(core.admission.draining() && core.running == 0 && core.active_conns == 0) {
            core = self.state.cv.wait(core).unwrap();
        }
    }

    /// Whether the pool is fully released (post-drain invariant).
    pub fn pool_idle(&self) -> bool {
        let core = self.state.core.lock().unwrap();
        core.admission.pool().idle()
    }

    /// Stats snapshot (same document the wire `stats` request returns).
    pub fn stats(&self) -> Json {
        let core = self.state.core.lock().unwrap();
        stats_doc(&core)
    }

    /// Full metrics snapshot (same document the wire `metrics` request
    /// returns); see [`proto`] for the schema.
    pub fn metrics(&self) -> Json {
        let core = self.state.core.lock().unwrap();
        metrics_doc(&core)
    }
}

impl Drop for Sortd {
    fn drop(&mut self) {
        // Stop accepting; don't wait for jobs (drain() is the graceful path).
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(mut a) = self.state.acceptor.lock().unwrap().take() {
            a.stop();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

/// Rebuild the job table, dedupe map, and pending-recovery set from the
/// journal. Terminal records become the at-most-once dedupe set;
/// non-terminal records are stamped `interrupted` (counted in
/// `jobs_recovered`) and, when their scratch manifest survived the kill,
/// parked in the recovered set awaiting re-submission or the grace sweep.
fn replay_journal(journal: &Journal, core: &mut Core) -> io::Result<()> {
    let replay = journal.replay()?;
    if !replay.corrupt.is_empty() {
        obs::metrics::counter_add("sortd.journal.corrupt", replay.corrupt.len() as u64);
    }
    for mut rec in replay.records {
        core.next_id = core.next_id.max(rec.job_id + 1);
        let (jstate, error) = if rec.terminal() {
            let st = match rec.state.as_str() {
                "done" => JobState::Done,
                "canceled" => JobState::Canceled,
                _ => JobState::Failed,
            };
            (st, rec.error.clone())
        } else {
            core.counters.jobs_recovered += 1;
            rec.state = "interrupted".into();
            let _ = journal.record(&rec);
            if journal.scratch_manifest_path(&rec.key).exists() {
                core.recovered.insert(rec.key.clone(), Instant::now());
            }
            (JobState::Failed, Some("interrupted".to_string()))
        };
        core.jobs.insert(
            rec.job_id,
            JobRecord {
                name: rec.spec.name.clone(),
                state: jstate,
                error,
                records: rec.records,
                key: Some(rec.key.clone()),
            },
        );
        core.idem.insert(rec.key.clone(), rec.job_id);
    }
    Ok(())
}

fn drain_impl(state: &State) -> (u64, u64) {
    let mut core = state.core.lock().unwrap();
    let dumped = core.admission.drain();
    let mut failed_queued = 0u64;
    for id in dumped {
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Failed;
            rec.error = Some(SortdError::Draining.code().to_string());
        }
        core.counters.failed += 1;
        failed_queued += 1;
        if let Some(tx) = core.waiters.remove(&id) {
            let _ = tx.send(Wake::Failed(SortdError::Draining));
        }
        // Draining is retryable: the key must stay reusable and the
        // journal must not replay this job as interrupted.
        forget_unrun(&mut core, &state.journal, id);
    }
    while core.running > 0 {
        core = state.cv.wait(core).unwrap();
    }
    let total_done = core.counters.done;
    drop(core);
    if let Some(mut a) = state.acceptor.lock().unwrap().take() {
        a.stop();
    }
    // Wake wait_drained() parkers (nothing else re-checks after the last
    // running job's own notify when the queue was already empty).
    state.cv.notify_all();
    obs::metrics::counter_add("sortd.drained", 1);
    (total_done, failed_queued)
}

/// One watchdog tick. Public within the crate's tests so deadline and
/// sweep behavior can be driven deterministically without sleeping.
fn watchdog_pass(state: &Arc<State>, grace: Duration) {
    let mut core = state.core.lock().unwrap();
    let now = Instant::now();

    // 1. Deadlines. Running jobs get a cooperative cancel (the executor
    // errors at its next chunk); queued jobs fail immediately.
    let expired: Vec<u64> = core
        .watch
        .iter()
        .filter(|(_, w)| w.deadline.is_some_and(|d| d <= now))
        .map(|(id, _)| *id)
        .collect();
    for id in expired {
        let token = core.watch.get(&id).and_then(|w| w.token.clone());
        if let Some(token) = token {
            token.cancel(CancelReason::Deadline);
            core.counters.deadline_kills += 1;
            if let Some(w) = core.watch.get_mut(&id) {
                w.deadline = None; // fire once; the executor surfaces it
            }
        } else if core.admission.cancel_queued(id) {
            core.counters.deadline_kills += 1;
            core.counters.failed += 1;
            let limit_ms = core.watch.get(&id).map(|w| w.deadline_ms).unwrap_or(0);
            let err = SortdError::DeadlineExceeded { limit_ms };
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Failed;
                rec.error = Some(err.code().to_string());
            }
            if let Some(tx) = core.waiters.remove(&id) {
                let _ = tx.send(Wake::Failed(err));
            }
            if let Some(w) = core.watch.remove(&id) {
                if let (Some(mut rec), Some(j)) = (w.rec, &state.journal) {
                    rec.state = "failed".into();
                    rec.error = Some("deadline_exceeded".into());
                    let _ = j.record(&rec);
                }
            }
        }
        // else: promoted but its token not yet registered — next tick.
    }

    // 2. Dead submitters. The server never reads a submit connection
    // after its payload, so a readable EOF/reset on the peek means the
    // client hung up.
    let watched: Vec<u64> = core
        .watch
        .iter()
        .filter(|(_, w)| w.conn.is_some())
        .map(|(id, _)| *id)
        .collect();
    for id in watched {
        let dead = core
            .watch
            .get(&id)
            .and_then(|w| w.conn.as_ref())
            .map(conn_dead)
            .unwrap_or(false);
        if !dead {
            continue;
        }
        let token = core.watch.get(&id).and_then(|w| w.token.clone());
        if let Some(token) = token {
            token.cancel(CancelReason::ClientGone);
            if let Some(w) = core.watch.get_mut(&id) {
                w.conn = None;
            }
        } else if core.admission.cancel_queued(id) {
            core.counters.failed += 1;
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Failed;
                rec.error = Some(SortdError::ClientGone.code().to_string());
            }
            if let Some(tx) = core.waiters.remove(&id) {
                let _ = tx.send(Wake::Failed(SortdError::ClientGone));
            }
            forget_unrun(&mut core, &state.journal, id);
        }
    }

    // 3. Recovered scratch nobody re-claimed within the grace period: the
    // submitting clients died with the old process, so dispose the runs
    // and free the key for a fresh submit.
    let due: Vec<String> = core
        .recovered
        .iter()
        .filter(|(_, since)| since.elapsed() >= grace)
        .map(|(k, _)| k.clone())
        .collect();
    for key in due {
        core.recovered.remove(&key);
        let Some(j) = &state.journal else { continue };
        let manifest = j.scratch_manifest_path(&key);
        match &state.backing {
            ScratchBacking::SharedVolume(volume, _) => {
                let _ = StripeScratch::dispose_at(volume, &manifest);
            }
            ScratchBacking::Memory => {
                let _ = std::fs::remove_file(&manifest);
            }
        }
        core.counters.scratch_disposed += 1;
        let _ = j.remove(&key);
        if let Some(id) = core.idem.remove(&key) {
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.error = Some("scratch_disposed".to_string());
            }
        }
    }
}

/// Nonblocking 1-byte peek on a submit connection the server has finished
/// reading: EOF or a hard error means the client is gone; `WouldBlock`
/// means it is still there, waiting for its response.
fn conn_dead(conn: &TcpStream) -> bool {
    if conn.set_nonblocking(true).is_err() {
        return true;
    }
    let mut b = [0u8; 1];
    let dead = match conn.peek(&mut b) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = conn.set_nonblocking(false);
    dead
}

/// Jobs in the table counted by lifecycle state (the `jobs` stats section).
fn job_state_counts(core: &Core) -> Json {
    let mut counts = [0u64; 5];
    for rec in core.jobs.values() {
        let slot = match rec.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Canceled => 4,
        };
        counts[slot] += 1;
    }
    Json::Obj(vec![
        ("queued".into(), Json::from(counts[0])),
        ("running".into(), Json::from(counts[1])),
        ("done".into(), Json::from(counts[2])),
        ("failed".into(), Json::from(counts[3])),
        ("canceled".into(), Json::from(counts[4])),
    ])
}

fn stats_doc(core: &Core) -> Json {
    let pool = core.admission.pool();
    Json::Obj(vec![
        ("type".into(), Json::from("stats")),
        ("uptime_ms".into(), Json::from(core.telemetry.uptime_ms())),
        (
            "pool".into(),
            Json::Obj(vec![
                ("mem_total".into(), Json::from(pool.mem_total())),
                ("mem_in_use".into(), Json::from(pool.mem_used())),
                ("mem_hwm".into(), Json::from(pool.mem_hwm())),
                ("scratch_total".into(), Json::from(pool.scratch_total())),
                ("scratch_in_use".into(), Json::from(pool.scratch_used())),
                ("scratch_hwm".into(), Json::from(pool.scratch_hwm())),
            ]),
        ),
        (
            "queue".into(),
            Json::Obj(vec![
                ("depth".into(), Json::from(core.admission.queue_depth() as u64)),
                ("bound".into(), Json::from(core.admission.queue_bound() as u64)),
                ("bypasses".into(), Json::from(core.admission.bypasses)),
                ("aged_barriers".into(), Json::from(core.admission.aged_barriers)),
            ]),
        ),
        ("running".into(), Json::from(core.running as u64)),
        ("draining".into(), Json::Bool(core.admission.draining())),
        ("jobs".into(), job_state_counts(core)),
        (
            "counters".into(),
            Json::Obj(vec![
                ("submitted".into(), Json::from(core.counters.submitted)),
                ("done".into(), Json::from(core.counters.done)),
                ("failed".into(), Json::from(core.counters.failed)),
                ("rejected".into(), Json::from(core.counters.rejected)),
                ("canceled".into(), Json::from(core.counters.canceled)),
                ("duplicates".into(), Json::from(core.counters.duplicates)),
                ("jobs_recovered".into(), Json::from(core.counters.jobs_recovered)),
                ("runs_recovered".into(), Json::from(core.counters.runs_recovered)),
                ("runs_reformed".into(), Json::from(core.counters.runs_reformed)),
                ("scratch_disposed".into(), Json::from(core.counters.scratch_disposed)),
                ("deadline_kills".into(), Json::from(core.counters.deadline_kills)),
            ]),
        ),
        ("latency".into(), core.telemetry.summaries()),
    ])
}

/// The `metrics` wire doc: the whole service state as one
/// [`obs::MetricsSnapshot`] (counters/gauges/full-fidelity histograms)
/// under a `type`/`uptime_ms` envelope, so a client can decode it with
/// `MetricsSnapshot::from_json` and diff successive polls — `sortd top`'s
/// whole input. Field names are a stable wire contract; see [`proto`].
fn metrics_doc(core: &Core) -> Json {
    let pool = core.admission.pool();
    let mut snap = obs::MetricsSnapshot::default();
    for (name, v) in [
        ("sortd.jobs.submitted", core.counters.submitted),
        ("sortd.jobs.done", core.counters.done),
        ("sortd.jobs.failed", core.counters.failed),
        ("sortd.jobs.rejected", core.counters.rejected),
        ("sortd.jobs.canceled", core.counters.canceled),
        ("sortd.jobs.duplicates", core.counters.duplicates),
        ("sortd.recovery.jobs_recovered", core.counters.jobs_recovered),
        ("sortd.recovery.runs_recovered", core.counters.runs_recovered),
        ("sortd.recovery.runs_reformed", core.counters.runs_reformed),
        ("sortd.recovery.scratch_disposed", core.counters.scratch_disposed),
        ("sortd.deadline.kills", core.counters.deadline_kills),
        ("sortd.admission.bypasses", core.admission.bypasses),
        ("sortd.admission.aged_barriers", core.admission.aged_barriers),
    ] {
        snap.counters.insert(name.to_string(), v);
    }
    for (name, v) in [
        ("sortd.pool.mem_total", pool.mem_total() as i64),
        ("sortd.pool.mem_in_use", pool.mem_used() as i64),
        ("sortd.pool.mem_hwm", pool.mem_hwm() as i64),
        ("sortd.pool.scratch_total", pool.scratch_total() as i64),
        ("sortd.pool.scratch_in_use", pool.scratch_used() as i64),
        ("sortd.pool.scratch_hwm", pool.scratch_hwm() as i64),
        ("sortd.queue.depth", core.admission.queue_depth() as i64),
        ("sortd.queue.bound", core.admission.queue_bound() as i64),
        ("sortd.running", core.running as i64),
        ("sortd.draining", core.admission.draining() as i64),
        ("sortd.recovery.pending", core.recovered.len() as i64),
    ] {
        snap.gauges.insert(name.to_string(), v);
    }
    for (name, h) in core.telemetry.histograms() {
        snap.histograms.insert(name.to_string(), h.clone());
    }
    let mut fields = vec![
        ("type".into(), Json::from("metrics")),
        ("uptime_ms".into(), Json::from(core.telemetry.uptime_ms())),
    ];
    if let Json::Obj(inner) = snap.to_json() {
        fields.extend(inner);
    }
    Json::Obj(fields)
}

/// Dispatch one client connection: read the request document, route it.
fn serve_connection(mut stream: TcpStream, state: &Arc<State>) -> io::Result<()> {
    stream.set_read_timeout(Some(state.read_timeout))?;
    stream.set_write_timeout(Some(state.write_timeout))?;
    stream.set_nodelay(true).ok();
    let doc = proto::read_ctrl(&mut stream)?;
    match doc.field_str("type").map_err(|e| bad(&e.to_string()))? {
        "submit" => {
            let conn = stream.try_clone().ok();
            handle_submit(&mut stream, state, &doc, conn)
        }
        "status" => handle_status(&mut stream, state, &doc),
        "stats" => {
            let core = state.core.lock().unwrap();
            let out = stats_doc(&core);
            drop(core);
            proto::send_ctrl(&mut stream, &out)
        }
        "metrics" => {
            let core = state.core.lock().unwrap();
            let out = metrics_doc(&core);
            drop(core);
            proto::send_ctrl(&mut stream, &out)
        }
        "cancel" => handle_cancel(&mut stream, state, &doc),
        "drain" => {
            let (total_done, failed_queued) = drain_impl(state);
            proto::send_ctrl(
                &mut stream,
                &Json::Obj(vec![
                    ("type".into(), Json::from("drained")),
                    ("total_done".into(), Json::from(total_done)),
                    ("failed_queued".into(), Json::from(failed_queued)),
                ]),
            )
        }
        other => {
            let err = SortdError::BadManifest(format!("unknown request type {other:?}"));
            proto::send_ctrl(&mut stream, &proto::error_doc(None, &err))
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Answer a duplicate submit from the terminal record: a `done` original
/// replays as an ack + result (`duplicate: true`, no output payload — the
/// journal stores outcomes, not output bytes); a failed/canceled original
/// replays its error code, never retryable (retrying cannot change a
/// settled outcome).
fn send_duplicate(
    stream: &mut impl io::Write,
    id: u64,
    (dup_state, error, records): (JobState, Option<String>, u64),
) -> io::Result<()> {
    if dup_state == JobState::Done {
        send_ack(stream, id, "done", 0)?;
        proto::send_ctrl(
            stream,
            &Json::Obj(vec![
                ("type".into(), Json::from("result")),
                ("job_id".into(), Json::from(id)),
                ("state".into(), Json::from("done")),
                ("records".into(), Json::from(records)),
                ("output_bytes".into(), Json::from(0u64)),
                ("plan".into(), Json::from("cached")),
                ("duplicate".into(), Json::Bool(true)),
            ]),
        )?;
        return proto::send_payload(stream, &[]);
    }
    let code = error.unwrap_or_else(|| "exec_failed".into());
    proto::send_ctrl(
        stream,
        &Json::Obj(vec![
            ("type".into(), Json::from("error")),
            ("job_id".into(), Json::from(id)),
            ("code".into(), Json::from(code.as_str())),
            ("retryable".into(), Json::Bool(false)),
            (
                "message".into(),
                Json::from(format!("duplicate of settled job {id} ({code})").as_str()),
            ),
            ("duplicate".into(), Json::Bool(true)),
        ]),
    )
}

/// Register the submitter's socket for the watchdog's dead-client sweep —
/// only after the ack write succeeded, so the watchdog's nonblocking peek
/// can never race one of this thread's own blocking writes.
fn register_conn(state: &State, id: u64, conn: Option<TcpStream>) {
    if let Some(c) = conn {
        let mut core = state.core.lock().unwrap();
        if let Some(w) = core.watch.get_mut(&id) {
            w.conn = Some(c);
        }
    }
}

fn handle_submit(
    stream: &mut (impl io::Read + io::Write),
    state: &Arc<State>,
    doc: &Json,
    conn: Option<TcpStream>,
) -> io::Result<()> {
    let _span = obs::span(obs::phase::SORTD_JOB);
    // e2e clock: manifest parsed to result settled (telemetry's `e2e_us`).
    let submit_start = Instant::now();
    let spec = match JobSpec::from_json(doc) {
        Ok(s) => s,
        Err(e) => {
            let err = SortdError::BadManifest(e);
            let mut core = state.core.lock().unwrap();
            core.counters.rejected += 1;
            drop(core);
            return proto::send_ctrl(stream, &proto::error_doc(None, &err));
        }
    };

    // Validate against pool totals before touching the payload, so a
    // hopeless manifest is rejected without the input transfer counting
    // toward anything.
    {
        let mut core = state.core.lock().unwrap();
        let pool = core.admission.pool();
        if let Err(err) = spec.validate(pool.mem_total(), pool.scratch_total()) {
            core.counters.rejected += 1;
            drop(core);
            // Drain the payload the client is already streaming so its
            // writes don't die on a reset before it reads our error. The
            // manifest just failed validation, so its declared length is
            // untrusted: discard under a fixed cap, buffer nothing.
            let _ = proto::drain_payload(stream, proto::REJECT_DRAIN_CAP);
            return proto::send_ctrl(stream, &proto::error_doc(None, &err));
        }
    }

    // Idempotency gate, before the payload is buffered: a terminal key is
    // answered from its record (payload drained, never stored), a live key
    // is rejected, an interrupted key proceeds as a resume, and a fresh
    // key is reserved (value 0) so a concurrent same-key submit between
    // here and id allocation sees it in flight.
    if let Some(key) = spec.idem_key.clone() {
        let mut core = state.core.lock().unwrap();
        match core.idem.get(&key).copied() {
            None => {
                core.idem.insert(key.clone(), 0);
            }
            Some(prior) => {
                let snapshot = (prior != 0)
                    .then(|| core.jobs.get(&prior))
                    .flatten()
                    .map(|r| (r.state, r.error.clone(), r.records));
                let interrupted = matches!(&snapshot, Some((_, Some(e), _)) if e == "interrupted");
                let terminal = matches!(
                    snapshot,
                    Some((JobState::Done | JobState::Failed | JobState::Canceled, _, _))
                );
                if interrupted {
                    // The kill-interrupted original: re-run it, resuming
                    // whatever scratch survived. Its pending-recovery entry
                    // is claimed here so the grace sweep leaves it alone.
                    core.recovered.remove(&key);
                    core.idem.insert(key.clone(), 0);
                } else if terminal {
                    core.counters.duplicates += 1;
                    obs::metrics::counter_add("sortd.jobs.duplicates", 1);
                    let answer = snapshot.unwrap();
                    drop(core);
                    let _ = proto::drain_payload(stream, proto::REJECT_DRAIN_CAP);
                    return send_duplicate(stream, prior, answer);
                } else {
                    core.counters.rejected += 1;
                    drop(core);
                    let err = SortdError::BadManifest(format!(
                        "idem_key {key:?} is already in flight"
                    ));
                    let _ = proto::drain_payload(stream, proto::REJECT_DRAIN_CAP);
                    return proto::send_ctrl(stream, &proto::error_doc(None, &err));
                }
            }
        }
    }

    let input = match proto::read_payload(stream, spec.input_bytes) {
        Ok(v) => v,
        Err(e) => {
            // Un-reserve the key: the payload never arrived, nothing ran.
            if let Some(k) = &spec.idem_key {
                let mut core = state.core.lock().unwrap();
                if core.idem.get(k) == Some(&0) {
                    core.idem.remove(k);
                }
            }
            return Err(e);
        }
    };

    // Offer the job to admission.
    let deadline_at = (spec.deadline_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(spec.deadline_ms));
    let (id, rx, token, mut jrec) = {
        let mut core = state.core.lock().unwrap();
        let id = core.next_id;
        core.next_id += 1;
        core.counters.submitted += 1;
        // The journaled key: the client's, or a synthetic one so keyless
        // jobs still journal (their scratch must be sweepable after a
        // kill — they just can't dedupe).
        let key = match (&spec.idem_key, &state.journal) {
            (Some(k), _) => Some(k.clone()),
            (None, Some(_)) => Some(format!("anon-job-{id}")),
            (None, None) => None,
        };
        core.jobs.insert(
            id,
            JobRecord {
                name: spec.name.clone(),
                state: JobState::Queued,
                error: None,
                records: 0,
                key: key.clone(),
            },
        );
        if let Some(k) = &spec.idem_key {
            core.idem.insert(k.clone(), id);
        }
        let jrec = key
            .filter(|_| state.journal.is_some())
            .map(|k| JournalRecord::accepted(k, id, spec.clone()));
        let token = CancelToken::new();
        let mut promoted = Vec::new();
        let offer = core
            .admission
            .offer(id, spec.mem_budget, spec.scratch_budget, &mut promoted);
        core.wake_promoted(promoted);
        match offer {
            Offer::Rejected(err) => {
                core.counters.rejected += 1;
                if let Some(rec) = core.jobs.get_mut(&id) {
                    rec.state = JobState::Failed;
                    rec.error = Some(err.code().to_string());
                }
                // Load-shedding must not poison the key: the client's
                // retry (same key) is a fresh job.
                if let Some(k) = &spec.idem_key {
                    if core.idem.get(k) == Some(&id) {
                        core.idem.remove(k);
                    }
                }
                drop(core);
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
            Offer::Admitted => {
                if let Some(rec) = core.jobs.get_mut(&id) {
                    rec.state = JobState::Running;
                }
                core.running += 1;
                core.watch.insert(
                    id,
                    JobWatch {
                        deadline: deadline_at,
                        deadline_ms: spec.deadline_ms,
                        conn: None,
                        token: Some(token.clone()),
                        rec: jrec.clone(),
                    },
                );
                drop(core);
                if let (Some(j), Some(rec)) = (&state.journal, &jrec) {
                    let _ = j.record(rec);
                }
                // Budget is reserved and `running` counted from here on:
                // if the ack cannot reach the client, the admission must
                // be unwound or drain() waits on a job that never runs.
                if let Err(e) = send_ack(stream, id, "running", 0) {
                    settle_never_ran(state, id, &spec);
                    return Err(e);
                }
                register_conn(state, id, conn);
                (id, None, token, jrec)
            }
            Offer::Queued { depth } => {
                let (tx, rx) = channel();
                core.waiters.insert(id, tx);
                core.watch.insert(
                    id,
                    JobWatch {
                        deadline: deadline_at,
                        deadline_ms: spec.deadline_ms,
                        conn: None,
                        token: None,
                        rec: jrec.clone(),
                    },
                );
                drop(core);
                if let (Some(j), Some(rec)) = (&state.journal, &jrec) {
                    let _ = j.record(rec);
                }
                if let Err(e) = send_ack(stream, id, "queued", depth) {
                    abort_queued(state, id, &spec, &rx);
                    return Err(e);
                }
                register_conn(state, id, conn);
                (id, Some(rx), token, jrec)
            }
        }
    };

    // Park until admitted (queued path). The channel never hangs: drain,
    // cancel, and the watchdog all wake it, and the sender lives in the
    // core's waiter map. Immediate admits record a true zero queue wait.
    let mut queue_wait = Duration::ZERO;
    if let Some(rx) = rx {
        let _q = obs::span(obs::phase::SORTD_QUEUE);
        let parked = Instant::now();
        let wake = rx.recv();
        queue_wait = parked.elapsed();
        match wake {
            Ok(Wake::Admitted) => {
                // Hand the watchdog the cooperative cancel path now that
                // the job is running.
                let mut core = state.core.lock().unwrap();
                if let Some(w) = core.watch.get_mut(&id) {
                    w.token = Some(token.clone());
                }
            }
            Ok(Wake::Failed(err)) => {
                // State and counters were updated by whoever failed us.
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
            Err(_) => {
                let err = SortdError::Exec("daemon shut down while job was queued".into());
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
        }
    }

    // Journal `running` with the scratch-manifest pointer: from here to
    // the terminal record, a kill leaves a resumable job.
    let manifest = jrec
        .as_ref()
        .and_then(|r| state.journal.as_ref().map(|j| j.scratch_manifest_path(&r.key)));
    if let (Some(j), Some(rec)) = (&state.journal, jrec.as_mut()) {
        rec.state = "running".into();
        rec.scratch_manifest = manifest.clone();
        let _ = j.record(rec);
    }

    // Run — no lock held.
    let exec_start = Instant::now();
    let result = run_job(id, &spec, input, &state.backing, &token, manifest.as_deref());
    let exec = exec_start.elapsed();

    // Release the budget, promote successors, settle the record.
    let mut core = state.core.lock().unwrap();
    let mut promoted = Vec::new();
    core.admission
        .release(spec.mem_budget, spec.scratch_budget, &mut promoted);
    core.wake_promoted(promoted);
    core.running -= 1;
    core.watch.remove(&id);
    let outcome = match &result {
        Ok((_, stats, _)) => {
            core.counters.done += 1;
            core.counters.runs_recovered += stats.runs_recovered;
            core.counters.runs_reformed += stats.runs_reformed;
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Done;
                rec.records = stats.records;
            }
            Ok(())
        }
        Err(e) => {
            let err = match (e.kind(), token.reason()) {
                (io::ErrorKind::Interrupted, Some(CancelReason::Deadline)) => {
                    SortdError::DeadlineExceeded { limit_ms: spec.deadline_ms }
                }
                (io::ErrorKind::Interrupted, Some(CancelReason::ClientGone)) => {
                    SortdError::ClientGone
                }
                _ => SortdError::Exec(e.to_string()),
            };
            core.counters.failed += 1;
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Failed;
                rec.error = Some(err.code().to_string());
            }
            // A client-gone abort produced no outcome: free the key (and
            // its journal record) so a surviving retry runs fresh.
            if matches!(err, SortdError::ClientGone) {
                forget_unrun(&mut core, &state.journal, id);
            }
            Err(err)
        }
    };
    // Every job that ran — success or exec failure — lands in the latency
    // histograms; jobs that never ran (reject/drain/cancel) do not.
    core.telemetry.record_job(queue_wait, exec, submit_start.elapsed());
    state.cv.notify_all();
    drop(core);

    // Journal the terminal state *before* answering: a kill between the
    // two still dedupes (the answer is re-sendable; the execution is not).
    if let (Some(j), Some(rec)) = (&state.journal, jrec.as_mut()) {
        match &outcome {
            Ok(()) => {
                if let Ok((_, stats, _)) = &result {
                    rec.state = "done".into();
                    rec.records = stats.records;
                    let _ = j.record(rec);
                }
            }
            // Already removed by forget_unrun under the lock.
            Err(SortdError::ClientGone) => {}
            Err(err) => {
                rec.state = "failed".into();
                rec.error = Some(err.code().to_string());
                let _ = j.record(rec);
            }
        }
    }

    match (result, outcome) {
        (Ok((sorted, stats, plan)), Ok(())) => {
            let result_doc = Json::Obj(vec![
                ("type".into(), Json::from("result")),
                ("job_id".into(), Json::from(id)),
                ("state".into(), Json::from("done")),
                ("records".into(), Json::from(stats.records)),
                ("output_bytes".into(), Json::from(sorted.len() as u64)),
                ("plan".into(), Json::from(format!("{plan:?}").as_str())),
            ]);
            proto::send_ctrl(stream, &result_doc)?;
            proto::send_payload(stream, &sorted)
        }
        (_, Err(err)) => proto::send_ctrl(stream, &proto::error_doc(Some(id), &err)),
        (Err(_), Ok(())) => unreachable!("error result recorded as success"),
    }
}

/// Unwind a job that was admitted (budget reserved, `running` counted)
/// but will never run because its client connection died: release the
/// budget, promote successors, record the failure, and wake drain.
fn settle_never_ran(state: &State, id: u64, spec: &JobSpec) {
    let mut core = state.core.lock().unwrap();
    let mut promoted = Vec::new();
    core.admission
        .release(spec.mem_budget, spec.scratch_budget, &mut promoted);
    core.wake_promoted(promoted);
    core.running -= 1;
    core.counters.failed += 1;
    if let Some(rec) = core.jobs.get_mut(&id) {
        rec.state = JobState::Failed;
        rec.error = Some(SortdError::ClientGone.code().to_string());
    }
    forget_unrun(&mut core, &state.journal, id);
    state.cv.notify_all();
}

/// Settle a job stranded in the admission queue by a failed ack write.
/// This races concurrent promotion, but both promotion and drain/cancel
/// wake the waiter *while holding the core lock* — so once we hold it,
/// the job is either still queued or its wake message is already in `rx`.
fn abort_queued(state: &State, id: u64, spec: &JobSpec, rx: &Receiver<Wake>) {
    let mut core = state.core.lock().unwrap();
    if core.admission.cancel_queued(id) {
        // Still queued: nothing reserved, just remove every trace.
        core.waiters.remove(&id);
        core.counters.failed += 1;
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Failed;
            rec.error = Some(SortdError::ClientGone.code().to_string());
        }
        forget_unrun(&mut core, &state.journal, id);
        return;
    }
    drop(core);
    match rx.try_recv() {
        // Promoted while the ack write was failing: the promoter reserved
        // budget and counted us running — undo the admission.
        Ok(Wake::Admitted) => settle_never_ran(state, id, spec),
        // Drain or cancel already failed the job and settled its record;
        // nothing is held on its behalf.
        Ok(Wake::Failed(_)) | Err(_) => {}
    }
}

fn send_ack(stream: &mut impl io::Write, id: u64, st: &str, depth: usize) -> io::Result<()> {
    proto::send_ctrl(
        stream,
        &Json::Obj(vec![
            ("type".into(), Json::from("ack")),
            ("job_id".into(), Json::from(id)),
            ("state".into(), Json::from(st)),
            ("queue_depth".into(), Json::from(depth as u64)),
        ]),
    )
}

fn handle_status(stream: &mut TcpStream, state: &Arc<State>, doc: &Json) -> io::Result<()> {
    let id = doc.field_u64("job_id").map_err(|e| bad(&e.to_string()))?;
    let core = state.core.lock().unwrap();
    let out = match core.jobs.get(&id) {
        Some(rec) => {
            let mut fields = vec![
                ("type".into(), Json::from("status")),
                ("job_id".into(), Json::from(id)),
                ("name".into(), Json::from(rec.name.as_str())),
                ("state".into(), Json::from(rec.state.name())),
            ];
            if let Some(code) = &rec.error {
                fields.push(("error".into(), Json::from(code.as_str())));
            }
            Json::Obj(fields)
        }
        None => proto::error_doc(
            Some(id),
            &SortdError::BadManifest(format!("no job {id}")),
        ),
    };
    drop(core);
    proto::send_ctrl(stream, &out)
}

fn handle_cancel(stream: &mut TcpStream, state: &Arc<State>, doc: &Json) -> io::Result<()> {
    let id = doc.field_u64("job_id").map_err(|e| bad(&e.to_string()))?;
    let mut core = state.core.lock().unwrap();
    let out = if core.admission.cancel_queued(id) {
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Canceled;
            rec.error = Some(SortdError::Canceled.code().to_string());
        }
        core.counters.canceled += 1;
        if let Some(tx) = core.waiters.remove(&id) {
            let _ = tx.send(Wake::Failed(SortdError::Canceled));
        }
        // A client cancel is a settled intent: journal it terminal so the
        // key dedupes to `canceled` even across a restart.
        if let Some(w) = core.watch.remove(&id) {
            if let (Some(mut rec), Some(j)) = (w.rec, &state.journal) {
                rec.state = "canceled".into();
                rec.error = Some(SortdError::Canceled.code().to_string());
                let _ = j.record(&rec);
            }
        }
        Json::Obj(vec![
            ("type".into(), Json::from("canceled")),
            ("job_id".into(), Json::from(id)),
        ])
    } else {
        // Running, finished, or unknown: cancel only reaches queued jobs.
        let st = core.jobs.get(&id).map(|r| r.state.name()).unwrap_or("unknown");
        Json::Obj(vec![
            ("type".into(), Json::from("cancel_refused")),
            ("job_id".into(), Json::from(id)),
            ("state".into(), Json::from(st)),
        ])
    };
    drop(core);
    proto::send_ctrl(stream, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MIN_JOB_MEM;
    use alphasort_dmgen::RECORD_LEN;

    /// A client whose connection died: the request is readable, but every
    /// response write fails — the shape of a peer that hung up after
    /// streaming its payload.
    struct BrokenClient {
        input: io::Cursor<Vec<u8>>,
    }

    impl io::Read for BrokenClient {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            io::Read::read(&mut self.input, buf)
        }
    }

    impl io::Write for BrokenClient {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A live loopback client: request in, responses collected.
    struct LoopClient {
        input: io::Cursor<Vec<u8>>,
        out: Vec<u8>,
    }

    impl io::Read for LoopClient {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            io::Read::read(&mut self.input, buf)
        }
    }

    impl io::Write for LoopClient {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn test_state(pool: PoolConfig) -> Arc<State> {
        Arc::new(State {
            core: Mutex::new(Core {
                admission: Admission::new(pool, AdmissionConfig::default()),
                jobs: BTreeMap::new(),
                next_id: 1,
                running: 0,
                active_conns: 0,
                counters: Counters::default(),
                waiters: HashMap::new(),
                idem: HashMap::new(),
                watch: HashMap::new(),
                recovered: HashMap::new(),
                telemetry: Telemetry::new(),
            }),
            cv: Condvar::new(),
            backing: ScratchBacking::Memory,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            journal: None,
            acceptor: Mutex::new(None),
        })
    }

    fn one_record_spec(mem: u64) -> JobSpec {
        JobSpec {
            name: "t".into(),
            input_bytes: RECORD_LEN as u64,
            mem_budget: mem,
            scratch_budget: 0,
            ..JobSpec::default()
        }
    }

    fn submit_via_broken_client(state: &Arc<State>, spec: &JobSpec) -> io::Result<()> {
        let mut wire = Vec::new();
        proto::send_payload(&mut wire, &vec![0u8; spec.input_bytes as usize]).unwrap();
        let mut client = BrokenClient {
            input: io::Cursor::new(wire),
        };
        handle_submit(&mut client, state, &spec.to_json(), None)
    }

    fn submit_via_loop_client(state: &Arc<State>, spec: &JobSpec) -> io::Result<Vec<u8>> {
        let mut wire = Vec::new();
        proto::send_payload(&mut wire, &vec![0u8; spec.input_bytes as usize]).unwrap();
        let mut client = LoopClient {
            input: io::Cursor::new(wire),
            out: Vec::new(),
        };
        handle_submit(&mut client, state, &spec.to_json(), None)?;
        Ok(client.out)
    }

    #[test]
    fn failed_ack_after_admission_releases_budget_and_running() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        let err = submit_via_broken_client(&state, &one_record_spec(MIN_JOB_MEM)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let core = state.core.lock().unwrap();
        assert_eq!(core.running, 0, "running count must unwind");
        assert!(core.admission.pool().idle(), "budget must be released");
        assert!(core.waiters.is_empty());
        assert!(core.watch.is_empty(), "no stale watchdog entry");
        assert_eq!(core.counters.failed, 1);
        let rec = core.jobs.get(&1).expect("job recorded");
        assert_eq!(rec.state, JobState::Failed);
        assert_eq!(rec.error.as_deref(), Some("client_gone"));
    }

    #[test]
    fn failed_ack_of_a_queued_job_leaves_no_stranded_waiter() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        // A resident job holds the whole pool, so the submit must queue.
        {
            let mut core = state.core.lock().unwrap();
            let mut promoted = Vec::new();
            assert_eq!(
                core.admission.offer(999, 1 << 20, 0, &mut promoted),
                Offer::Admitted
            );
            core.running += 1;
        }
        let err = submit_via_broken_client(&state, &one_record_spec(MIN_JOB_MEM)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        {
            let core = state.core.lock().unwrap();
            assert_eq!(core.admission.queue_depth(), 0, "job removed from queue");
            assert!(core.waiters.is_empty(), "no orphaned waiter");
            assert_eq!(core.counters.failed, 1);
            let rec = core.jobs.get(&1).expect("job recorded");
            assert_eq!(rec.state, JobState::Failed);
            assert_eq!(rec.error.as_deref(), Some("client_gone"));
        }
        // The resident's release finds nothing to promote — the stranded
        // job is truly gone — and the pool zeroes out.
        let mut core = state.core.lock().unwrap();
        let mut promoted = Vec::new();
        core.admission.release(1 << 20, 0, &mut promoted);
        core.running -= 1;
        assert!(promoted.is_empty(), "no ghost promotion");
        assert!(core.admission.pool().idle());
    }

    #[test]
    fn duplicate_key_is_answered_from_the_record_without_rerunning() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        let spec = JobSpec {
            idem_key: Some("dup-1".into()),
            ..one_record_spec(MIN_JOB_MEM)
        };
        submit_via_loop_client(&state, &spec).unwrap();
        {
            let core = state.core.lock().unwrap();
            assert_eq!(core.counters.done, 1);
            assert_eq!(core.counters.duplicates, 0);
        }
        // Same key again: answered from the record, no second execution.
        let wire = submit_via_loop_client(&state, &spec).unwrap();
        let core = state.core.lock().unwrap();
        assert_eq!(core.counters.done, 1, "the sort must not run twice");
        assert_eq!(core.counters.duplicates, 1);
        assert_eq!(core.counters.submitted, 1, "duplicates are not submissions");
        assert!(core.admission.pool().idle());
        drop(core);
        // The duplicate's result doc says so on the wire.
        let mut r = io::Cursor::new(wire);
        let ack = proto::read_ctrl(&mut r).unwrap();
        assert_eq!(ack.field_str("state").unwrap(), "done");
        let result = proto::read_ctrl(&mut r).unwrap();
        assert_eq!(result.get("duplicate").and_then(Json::as_bool), Some(true));
        assert_eq!(result.field_u64("output_bytes").unwrap(), 0);
    }

    #[test]
    fn in_flight_key_is_rejected_and_reject_does_not_poison_the_key() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        let spec = JobSpec {
            idem_key: Some("live-1".into()),
            ..one_record_spec(MIN_JOB_MEM)
        };
        // Simulate an in-flight reservation (a concurrent submit between
        // its dedupe check and its id allocation).
        state.core.lock().unwrap().idem.insert("live-1".into(), 0);
        let wire = submit_via_loop_client(&state, &spec).unwrap();
        let mut r = io::Cursor::new(wire);
        let err = proto::read_ctrl(&mut r).unwrap();
        assert_eq!(err.field_str("type").unwrap(), "error");
        assert!(err.field_str("message").unwrap().contains("in flight"));
        // Clearing the reservation (as the owning submit's failure path
        // would) lets the key run.
        state.core.lock().unwrap().idem.remove("live-1");
        submit_via_loop_client(&state, &spec).unwrap();
        assert_eq!(state.core.lock().unwrap().counters.done, 1);
    }

    #[test]
    fn watchdog_kills_an_expired_queued_job() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        // A resident job holds the whole pool; queue a watched job whose
        // deadline has already passed.
        let (id, rx) = {
            let mut core = state.core.lock().unwrap();
            let mut promoted = Vec::new();
            assert_eq!(core.admission.offer(999, 1 << 20, 0, &mut promoted), Offer::Admitted);
            core.running += 1;
            let id = core.next_id;
            core.next_id += 1;
            core.jobs.insert(
                id,
                JobRecord {
                    name: "dl".into(),
                    state: JobState::Queued,
                    error: None,
                    records: 0,
                    key: None,
                },
            );
            assert!(matches!(
                core.admission.offer(id, MIN_JOB_MEM, 0, &mut promoted),
                Offer::Queued { .. }
            ));
            let (tx, rx) = channel();
            core.waiters.insert(id, tx);
            core.watch.insert(
                id,
                JobWatch {
                    deadline: Some(Instant::now()),
                    deadline_ms: 5,
                    conn: None,
                    token: None,
                    rec: None,
                },
            );
            (id, rx)
        };
        watchdog_pass(&state, Duration::from_secs(60));
        match rx.try_recv() {
            Ok(Wake::Failed(SortdError::DeadlineExceeded { limit_ms })) => {
                assert_eq!(limit_ms, 5)
            }
            other => panic!("expected deadline wake, got {:?}", other.is_ok()),
        }
        let core = state.core.lock().unwrap();
        assert_eq!(core.counters.deadline_kills, 1);
        assert_eq!(core.admission.queue_depth(), 0);
        assert!(core.watch.is_empty());
        assert_eq!(
            core.jobs.get(&id).unwrap().error.as_deref(),
            Some("deadline_exceeded")
        );
    }

    #[test]
    fn watchdog_deadline_on_a_running_job_fires_the_token_once() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        let token = CancelToken::new();
        {
            let mut core = state.core.lock().unwrap();
            core.watch.insert(
                7,
                JobWatch {
                    deadline: Some(Instant::now()),
                    deadline_ms: 10,
                    conn: None,
                    token: Some(token.clone()),
                    rec: None,
                },
            );
        }
        watchdog_pass(&state, Duration::from_secs(60));
        watchdog_pass(&state, Duration::from_secs(60));
        assert_eq!(token.reason(), Some(CancelReason::Deadline));
        let core = state.core.lock().unwrap();
        assert_eq!(core.counters.deadline_kills, 1, "deadline counted once");
        assert!(core.watch.contains_key(&7), "running watch stays until settle");
    }
}
