//! The daemon: accept loop, per-connection request dispatch, admission
//! wiring, and graceful drain.
//!
//! Threading model — one thread per connection, and the job *runs on the
//! connection thread that submitted it*. Admission is the concurrency
//! limiter: a job holds a thread while queued (parked on a channel, not
//! spinning) and while running. Pool *budget* is held only while running,
//! but a queued job is not free: its full input payload already sits in
//! daemon memory (the payload is read before the admission offer, so a
//! slow client can never stall the admission lock), and that residency is
//! outside pool accounting. Per job it is bounded by manifest validation
//! (an input can't exceed the larger pool total), so the worst case is
//! `queue_bound × max input size` — size `queue_bound` with that product
//! in mind, not just queue-depth taste.
//! The shared `Core` behind one mutex holds the admission state machine,
//! the job table, and the waiter channels; the sort itself never runs
//! under the lock.
//!
//! Drain (`drain()` on the handle, or a `{"type":"drain"}` request):
//! 1. stop admitting — every queued job fails with the retryable
//!    `draining` error and its waiter wakes,
//! 2. running jobs finish normally,
//! 3. the accept loop stops and the listener closes (new connects are
//!    refused),
//! 4. drain returns once the pool is back to zero.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use alphasort_minijson::Json;
use alphasort_netsort::AcceptLoop;
use alphasort_obs as obs;

use crate::admission::{Admission, AdmissionConfig, Offer};
use crate::executor::{run_job, ScratchBacking};
use crate::job::{JobSpec, JobState, SortdError};
use crate::pool::PoolConfig;
use crate::proto;
use crate::telemetry::Telemetry;

/// Daemon configuration.
#[derive(Clone)]
pub struct SortdConfig {
    /// Listen address; use port 0 to let the OS pick.
    pub listen: String,
    /// Resource pool capacities.
    pub pool: PoolConfig,
    /// Queue bound and aging limit.
    pub admission: AdmissionConfig,
    /// Where two-pass jobs spill.
    pub backing: ScratchBacking,
    /// Socket read timeout, so a stalled client cannot pin a connection
    /// thread forever mid-request.
    pub client_read_timeout: Duration,
}

impl Default for SortdConfig {
    fn default() -> Self {
        SortdConfig {
            listen: "127.0.0.1:0".into(),
            pool: PoolConfig::default(),
            admission: AdmissionConfig::default(),
            backing: ScratchBacking::Memory,
            client_read_timeout: Duration::from_secs(30),
        }
    }
}

/// What a queued submitter is woken with.
enum Wake {
    /// Budget reserved; go run.
    Admitted,
    /// The job will never run (drain, cancel).
    Failed(SortdError),
}

/// Everything the service remembers about one job.
struct JobRecord {
    name: String,
    state: JobState,
    /// Error code, for status responses after failure.
    error: Option<&'static str>,
}

/// Service counters, reported in the stats snapshot.
#[derive(Clone, Copy, Default)]
struct Counters {
    submitted: u64,
    done: u64,
    failed: u64,
    rejected: u64,
    canceled: u64,
}

/// Shared mutable state.
struct Core {
    admission: Admission,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    running: usize,
    /// Connection-handler threads currently alive; `wait_drained` holds
    /// the process open until responses (the drain ack included) flush.
    active_conns: usize,
    counters: Counters,
    waiters: HashMap<u64, Sender<Wake>>,
    /// Always-on service telemetry: uptime + latency histograms.
    telemetry: Telemetry,
}

impl Core {
    /// Mark `promoted` jobs running and wake their parked submitters.
    fn wake_promoted(&mut self, promoted: Vec<u64>) {
        for id in promoted {
            if let Some(rec) = self.jobs.get_mut(&id) {
                rec.state = JobState::Running;
            }
            self.running += 1;
            if let Some(tx) = self.waiters.remove(&id) {
                let _ = tx.send(Wake::Admitted);
            }
        }
    }
}

struct State {
    core: Mutex<Core>,
    /// Signaled when `running` drops — drain waits here.
    cv: Condvar,
    backing: ScratchBacking,
    read_timeout: Duration,
    /// The acceptor, stoppable from drain on any thread.
    acceptor: Mutex<Option<AcceptLoop>>,
}

/// Handle to a running daemon.
pub struct Sortd {
    state: Arc<State>,
    addr: std::net::SocketAddr,
}

impl Sortd {
    /// Bind, spawn the accept loop, and return the handle.
    pub fn start(cfg: SortdConfig) -> io::Result<Sortd> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let state = Arc::new(State {
            core: Mutex::new(Core {
                admission: Admission::new(cfg.pool, cfg.admission),
                jobs: BTreeMap::new(),
                next_id: 1,
                running: 0,
                active_conns: 0,
                counters: Counters::default(),
                waiters: HashMap::new(),
                telemetry: Telemetry::new(),
            }),
            cv: Condvar::new(),
            backing: cfg.backing.clone(),
            read_timeout: cfg.client_read_timeout,
            acceptor: Mutex::new(None),
        });
        let for_conns = Arc::clone(&state);
        let acceptor = AcceptLoop::spawn(listener, move |stream| {
            let st = Arc::clone(&for_conns);
            st.core.lock().unwrap().active_conns += 1;
            thread::spawn(move || {
                let _ = serve_connection(stream, &st);
                st.core.lock().unwrap().active_conns -= 1;
                st.cv.notify_all();
            });
        })?;
        let addr = acceptor.addr();
        *state.acceptor.lock().unwrap() = Some(acceptor);
        Ok(Sortd { state, addr })
    }

    /// The bound address (resolved port when `listen` used port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Graceful drain; returns `(total_done, failed_queued)` once every
    /// running job has finished and the pool is idle. `total_done` is the
    /// daemon's *lifetime* completed-job count (not just jobs that
    /// finished during this drain); `failed_queued` is how many queued
    /// jobs this drain failed with the retryable `draining` error.
    pub fn drain(&self) -> (u64, u64) {
        drain_impl(&self.state)
    }

    /// Block until some client (or another thread on this handle) drains
    /// the daemon — the `serve` subcommand's main-thread park.
    pub fn wait_drained(&self) {
        let mut core = self.state.core.lock().unwrap();
        while !(core.admission.draining() && core.running == 0 && core.active_conns == 0) {
            core = self.state.cv.wait(core).unwrap();
        }
    }

    /// Whether the pool is fully released (post-drain invariant).
    pub fn pool_idle(&self) -> bool {
        let core = self.state.core.lock().unwrap();
        core.admission.pool().idle()
    }

    /// Stats snapshot (same document the wire `stats` request returns).
    pub fn stats(&self) -> Json {
        let core = self.state.core.lock().unwrap();
        stats_doc(&core)
    }

    /// Full metrics snapshot (same document the wire `metrics` request
    /// returns); see [`proto`] for the schema.
    pub fn metrics(&self) -> Json {
        let core = self.state.core.lock().unwrap();
        metrics_doc(&core)
    }
}

impl Drop for Sortd {
    fn drop(&mut self) {
        // Stop accepting; don't wait for jobs (drain() is the graceful path).
        if let Some(mut a) = self.state.acceptor.lock().unwrap().take() {
            a.stop();
        }
    }
}

fn drain_impl(state: &State) -> (u64, u64) {
    let mut core = state.core.lock().unwrap();
    let dumped = core.admission.drain();
    let mut failed_queued = 0u64;
    for id in dumped {
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Failed;
            rec.error = Some(SortdError::Draining.code());
        }
        core.counters.failed += 1;
        failed_queued += 1;
        if let Some(tx) = core.waiters.remove(&id) {
            let _ = tx.send(Wake::Failed(SortdError::Draining));
        }
    }
    while core.running > 0 {
        core = state.cv.wait(core).unwrap();
    }
    let total_done = core.counters.done;
    drop(core);
    if let Some(mut a) = state.acceptor.lock().unwrap().take() {
        a.stop();
    }
    // Wake wait_drained() parkers (nothing else re-checks after the last
    // running job's own notify when the queue was already empty).
    state.cv.notify_all();
    obs::metrics::counter_add("sortd.drained", 1);
    (total_done, failed_queued)
}

/// Jobs in the table counted by lifecycle state (the `jobs` stats section).
fn job_state_counts(core: &Core) -> Json {
    let mut counts = [0u64; 5];
    for rec in core.jobs.values() {
        let slot = match rec.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Failed => 3,
            JobState::Canceled => 4,
        };
        counts[slot] += 1;
    }
    Json::Obj(vec![
        ("queued".into(), Json::from(counts[0])),
        ("running".into(), Json::from(counts[1])),
        ("done".into(), Json::from(counts[2])),
        ("failed".into(), Json::from(counts[3])),
        ("canceled".into(), Json::from(counts[4])),
    ])
}

fn stats_doc(core: &Core) -> Json {
    let pool = core.admission.pool();
    Json::Obj(vec![
        ("type".into(), Json::from("stats")),
        ("uptime_ms".into(), Json::from(core.telemetry.uptime_ms())),
        (
            "pool".into(),
            Json::Obj(vec![
                ("mem_total".into(), Json::from(pool.mem_total())),
                ("mem_in_use".into(), Json::from(pool.mem_used())),
                ("mem_hwm".into(), Json::from(pool.mem_hwm())),
                ("scratch_total".into(), Json::from(pool.scratch_total())),
                ("scratch_in_use".into(), Json::from(pool.scratch_used())),
                ("scratch_hwm".into(), Json::from(pool.scratch_hwm())),
            ]),
        ),
        (
            "queue".into(),
            Json::Obj(vec![
                ("depth".into(), Json::from(core.admission.queue_depth() as u64)),
                ("bound".into(), Json::from(core.admission.queue_bound() as u64)),
                ("bypasses".into(), Json::from(core.admission.bypasses)),
                ("aged_barriers".into(), Json::from(core.admission.aged_barriers)),
            ]),
        ),
        ("running".into(), Json::from(core.running as u64)),
        ("draining".into(), Json::Bool(core.admission.draining())),
        ("jobs".into(), job_state_counts(core)),
        (
            "counters".into(),
            Json::Obj(vec![
                ("submitted".into(), Json::from(core.counters.submitted)),
                ("done".into(), Json::from(core.counters.done)),
                ("failed".into(), Json::from(core.counters.failed)),
                ("rejected".into(), Json::from(core.counters.rejected)),
                ("canceled".into(), Json::from(core.counters.canceled)),
            ]),
        ),
        ("latency".into(), core.telemetry.summaries()),
    ])
}

/// The `metrics` wire doc: the whole service state as one
/// [`obs::MetricsSnapshot`] (counters/gauges/full-fidelity histograms)
/// under a `type`/`uptime_ms` envelope, so a client can decode it with
/// `MetricsSnapshot::from_json` and diff successive polls — `sortd top`'s
/// whole input. Field names are a stable wire contract; see [`proto`].
fn metrics_doc(core: &Core) -> Json {
    let pool = core.admission.pool();
    let mut snap = obs::MetricsSnapshot::default();
    for (name, v) in [
        ("sortd.jobs.submitted", core.counters.submitted),
        ("sortd.jobs.done", core.counters.done),
        ("sortd.jobs.failed", core.counters.failed),
        ("sortd.jobs.rejected", core.counters.rejected),
        ("sortd.jobs.canceled", core.counters.canceled),
        ("sortd.admission.bypasses", core.admission.bypasses),
        ("sortd.admission.aged_barriers", core.admission.aged_barriers),
    ] {
        snap.counters.insert(name.to_string(), v);
    }
    for (name, v) in [
        ("sortd.pool.mem_total", pool.mem_total() as i64),
        ("sortd.pool.mem_in_use", pool.mem_used() as i64),
        ("sortd.pool.mem_hwm", pool.mem_hwm() as i64),
        ("sortd.pool.scratch_total", pool.scratch_total() as i64),
        ("sortd.pool.scratch_in_use", pool.scratch_used() as i64),
        ("sortd.pool.scratch_hwm", pool.scratch_hwm() as i64),
        ("sortd.queue.depth", core.admission.queue_depth() as i64),
        ("sortd.queue.bound", core.admission.queue_bound() as i64),
        ("sortd.running", core.running as i64),
        ("sortd.draining", core.admission.draining() as i64),
    ] {
        snap.gauges.insert(name.to_string(), v);
    }
    for (name, h) in core.telemetry.histograms() {
        snap.histograms.insert(name.to_string(), h.clone());
    }
    let mut fields = vec![
        ("type".into(), Json::from("metrics")),
        ("uptime_ms".into(), Json::from(core.telemetry.uptime_ms())),
    ];
    if let Json::Obj(inner) = snap.to_json() {
        fields.extend(inner);
    }
    Json::Obj(fields)
}

/// Dispatch one client connection: read the request document, route it.
fn serve_connection(mut stream: TcpStream, state: &Arc<State>) -> io::Result<()> {
    stream.set_read_timeout(Some(state.read_timeout))?;
    stream.set_nodelay(true).ok();
    let doc = proto::read_ctrl(&mut stream)?;
    match doc.field_str("type").map_err(|e| bad(&e.to_string()))? {
        "submit" => handle_submit(&mut stream, state, &doc),
        "status" => handle_status(&mut stream, state, &doc),
        "stats" => {
            let core = state.core.lock().unwrap();
            let out = stats_doc(&core);
            drop(core);
            proto::send_ctrl(&mut stream, &out)
        }
        "metrics" => {
            let core = state.core.lock().unwrap();
            let out = metrics_doc(&core);
            drop(core);
            proto::send_ctrl(&mut stream, &out)
        }
        "cancel" => handle_cancel(&mut stream, state, &doc),
        "drain" => {
            let (total_done, failed_queued) = drain_impl(state);
            proto::send_ctrl(
                &mut stream,
                &Json::Obj(vec![
                    ("type".into(), Json::from("drained")),
                    ("total_done".into(), Json::from(total_done)),
                    ("failed_queued".into(), Json::from(failed_queued)),
                ]),
            )
        }
        other => {
            let err = SortdError::BadManifest(format!("unknown request type {other:?}"));
            proto::send_ctrl(&mut stream, &proto::error_doc(None, &err))
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn handle_submit(
    stream: &mut (impl io::Read + io::Write),
    state: &Arc<State>,
    doc: &Json,
) -> io::Result<()> {
    let _span = obs::span(obs::phase::SORTD_JOB);
    // e2e clock: manifest parsed to result settled (telemetry's `e2e_us`).
    let submit_start = Instant::now();
    let spec = match JobSpec::from_json(doc) {
        Ok(s) => s,
        Err(e) => {
            let err = SortdError::BadManifest(e);
            let mut core = state.core.lock().unwrap();
            core.counters.rejected += 1;
            drop(core);
            return proto::send_ctrl(stream, &proto::error_doc(None, &err));
        }
    };

    // Validate against pool totals before touching the payload, so a
    // hopeless manifest is rejected without the input transfer counting
    // toward anything.
    {
        let mut core = state.core.lock().unwrap();
        let pool = core.admission.pool();
        if let Err(err) = spec.validate(pool.mem_total(), pool.scratch_total()) {
            core.counters.rejected += 1;
            drop(core);
            // Drain the payload the client is already streaming so its
            // writes don't die on a reset before it reads our error. The
            // manifest just failed validation, so its declared length is
            // untrusted: discard under a fixed cap, buffer nothing.
            let _ = proto::drain_payload(stream, proto::REJECT_DRAIN_CAP);
            return proto::send_ctrl(stream, &proto::error_doc(None, &err));
        }
    }

    let input = proto::read_payload(stream, spec.input_bytes)?;

    // Offer the job to admission.
    let (id, rx) = {
        let mut core = state.core.lock().unwrap();
        let id = core.next_id;
        core.next_id += 1;
        core.counters.submitted += 1;
        core.jobs.insert(
            id,
            JobRecord {
                name: spec.name.clone(),
                state: JobState::Queued,
                error: None,
            },
        );
        let mut promoted = Vec::new();
        let offer = core
            .admission
            .offer(id, spec.mem_budget, spec.scratch_budget, &mut promoted);
        core.wake_promoted(promoted);
        match offer {
            Offer::Rejected(err) => {
                core.counters.rejected += 1;
                if let Some(rec) = core.jobs.get_mut(&id) {
                    rec.state = JobState::Failed;
                    rec.error = Some(err.code());
                }
                drop(core);
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
            Offer::Admitted => {
                if let Some(rec) = core.jobs.get_mut(&id) {
                    rec.state = JobState::Running;
                }
                core.running += 1;
                drop(core);
                // Budget is reserved and `running` counted from here on:
                // if the ack cannot reach the client, the admission must
                // be unwound or drain() waits on a job that never runs.
                if let Err(e) = send_ack(stream, id, "running", 0) {
                    settle_never_ran(state, id, &spec);
                    return Err(e);
                }
                (id, None)
            }
            Offer::Queued { depth } => {
                let (tx, rx) = channel();
                core.waiters.insert(id, tx);
                drop(core);
                if let Err(e) = send_ack(stream, id, "queued", depth) {
                    abort_queued(state, id, &spec, &rx);
                    return Err(e);
                }
                (id, Some(rx))
            }
        }
    };

    // Park until admitted (queued path). The channel never hangs: drain and
    // cancel both wake it, and the sender lives in the core's waiter map.
    // Immediate admits record a true zero queue wait.
    let mut queue_wait = Duration::ZERO;
    if let Some(rx) = rx {
        let _q = obs::span(obs::phase::SORTD_QUEUE);
        let parked = Instant::now();
        let wake = rx.recv();
        queue_wait = parked.elapsed();
        match wake {
            Ok(Wake::Admitted) => {}
            Ok(Wake::Failed(err)) => {
                // State and counters were updated by whoever failed us.
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
            Err(_) => {
                let err = SortdError::Exec("daemon shut down while job was queued".into());
                return proto::send_ctrl(stream, &proto::error_doc(Some(id), &err));
            }
        }
    }

    // Run — no lock held.
    let exec_start = Instant::now();
    let result = run_job(id, &spec, input, &state.backing);
    let exec = exec_start.elapsed();

    // Release the budget, promote successors, settle the record.
    let mut core = state.core.lock().unwrap();
    let mut promoted = Vec::new();
    core.admission
        .release(spec.mem_budget, spec.scratch_budget, &mut promoted);
    core.wake_promoted(promoted);
    core.running -= 1;
    let outcome = match &result {
        Ok(_) => {
            core.counters.done += 1;
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Done;
            }
            Ok(())
        }
        Err(e) => {
            core.counters.failed += 1;
            let err = SortdError::Exec(e.to_string());
            if let Some(rec) = core.jobs.get_mut(&id) {
                rec.state = JobState::Failed;
                rec.error = Some(err.code());
            }
            Err(err)
        }
    };
    // Every job that ran — success or exec failure — lands in the latency
    // histograms; jobs that never ran (reject/drain/cancel) do not.
    core.telemetry.record_job(queue_wait, exec, submit_start.elapsed());
    state.cv.notify_all();
    drop(core);

    match (result, outcome) {
        (Ok((sorted, stats, plan)), Ok(())) => {
            let result_doc = Json::Obj(vec![
                ("type".into(), Json::from("result")),
                ("job_id".into(), Json::from(id)),
                ("state".into(), Json::from("done")),
                ("records".into(), Json::from(stats.records)),
                ("output_bytes".into(), Json::from(sorted.len() as u64)),
                ("plan".into(), Json::from(format!("{plan:?}").as_str())),
            ]);
            proto::send_ctrl(stream, &result_doc)?;
            proto::send_payload(stream, &sorted)
        }
        (_, Err(err)) => proto::send_ctrl(stream, &proto::error_doc(Some(id), &err)),
        (Err(_), Ok(())) => unreachable!("error result recorded as success"),
    }
}

/// Unwind a job that was admitted (budget reserved, `running` counted)
/// but will never run because its client connection died: release the
/// budget, promote successors, record the failure, and wake drain.
fn settle_never_ran(state: &State, id: u64, spec: &JobSpec) {
    let mut core = state.core.lock().unwrap();
    let mut promoted = Vec::new();
    core.admission
        .release(spec.mem_budget, spec.scratch_budget, &mut promoted);
    core.wake_promoted(promoted);
    core.running -= 1;
    core.counters.failed += 1;
    if let Some(rec) = core.jobs.get_mut(&id) {
        rec.state = JobState::Failed;
        rec.error = Some(SortdError::ClientGone.code());
    }
    state.cv.notify_all();
}

/// Settle a job stranded in the admission queue by a failed ack write.
/// This races concurrent promotion, but both promotion and drain/cancel
/// wake the waiter *while holding the core lock* — so once we hold it,
/// the job is either still queued or its wake message is already in `rx`.
fn abort_queued(state: &State, id: u64, spec: &JobSpec, rx: &Receiver<Wake>) {
    let mut core = state.core.lock().unwrap();
    if core.admission.cancel_queued(id) {
        // Still queued: nothing reserved, just remove every trace.
        core.waiters.remove(&id);
        core.counters.failed += 1;
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Failed;
            rec.error = Some(SortdError::ClientGone.code());
        }
        return;
    }
    drop(core);
    match rx.try_recv() {
        // Promoted while the ack write was failing: the promoter reserved
        // budget and counted us running — undo the admission.
        Ok(Wake::Admitted) => settle_never_ran(state, id, spec),
        // Drain or cancel already failed the job and settled its record;
        // nothing is held on its behalf.
        Ok(Wake::Failed(_)) | Err(_) => {}
    }
}

fn send_ack(stream: &mut impl io::Write, id: u64, st: &str, depth: usize) -> io::Result<()> {
    proto::send_ctrl(
        stream,
        &Json::Obj(vec![
            ("type".into(), Json::from("ack")),
            ("job_id".into(), Json::from(id)),
            ("state".into(), Json::from(st)),
            ("queue_depth".into(), Json::from(depth as u64)),
        ]),
    )
}

fn handle_status(stream: &mut TcpStream, state: &Arc<State>, doc: &Json) -> io::Result<()> {
    let id = doc.field_u64("job_id").map_err(|e| bad(&e.to_string()))?;
    let core = state.core.lock().unwrap();
    let out = match core.jobs.get(&id) {
        Some(rec) => {
            let mut fields = vec![
                ("type".into(), Json::from("status")),
                ("job_id".into(), Json::from(id)),
                ("name".into(), Json::from(rec.name.as_str())),
                ("state".into(), Json::from(rec.state.name())),
            ];
            if let Some(code) = rec.error {
                fields.push(("error".into(), Json::from(code)));
            }
            Json::Obj(fields)
        }
        None => proto::error_doc(
            Some(id),
            &SortdError::BadManifest(format!("no job {id}")),
        ),
    };
    drop(core);
    proto::send_ctrl(stream, &out)
}

fn handle_cancel(stream: &mut TcpStream, state: &Arc<State>, doc: &Json) -> io::Result<()> {
    let id = doc.field_u64("job_id").map_err(|e| bad(&e.to_string()))?;
    let mut core = state.core.lock().unwrap();
    let out = if core.admission.cancel_queued(id) {
        if let Some(rec) = core.jobs.get_mut(&id) {
            rec.state = JobState::Canceled;
            rec.error = Some(SortdError::Canceled.code());
        }
        core.counters.canceled += 1;
        if let Some(tx) = core.waiters.remove(&id) {
            let _ = tx.send(Wake::Failed(SortdError::Canceled));
        }
        Json::Obj(vec![
            ("type".into(), Json::from("canceled")),
            ("job_id".into(), Json::from(id)),
        ])
    } else {
        // Running, finished, or unknown: cancel only reaches queued jobs.
        let st = core.jobs.get(&id).map(|r| r.state.name()).unwrap_or("unknown");
        Json::Obj(vec![
            ("type".into(), Json::from("cancel_refused")),
            ("job_id".into(), Json::from(id)),
            ("state".into(), Json::from(st)),
        ])
    };
    drop(core);
    proto::send_ctrl(stream, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MIN_JOB_MEM;
    use alphasort_dmgen::RECORD_LEN;

    /// A client whose connection died: the request is readable, but every
    /// response write fails — the shape of a peer that hung up after
    /// streaming its payload.
    struct BrokenClient {
        input: io::Cursor<Vec<u8>>,
    }

    impl io::Read for BrokenClient {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            io::Read::read(&mut self.input, buf)
        }
    }

    impl io::Write for BrokenClient {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "client gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn test_state(pool: PoolConfig) -> Arc<State> {
        Arc::new(State {
            core: Mutex::new(Core {
                admission: Admission::new(pool, AdmissionConfig::default()),
                jobs: BTreeMap::new(),
                next_id: 1,
                running: 0,
                active_conns: 0,
                counters: Counters::default(),
                waiters: HashMap::new(),
                telemetry: Telemetry::new(),
            }),
            cv: Condvar::new(),
            backing: ScratchBacking::Memory,
            read_timeout: Duration::from_secs(5),
            acceptor: Mutex::new(None),
        })
    }

    fn one_record_spec(mem: u64) -> JobSpec {
        JobSpec {
            name: "t".into(),
            input_bytes: RECORD_LEN as u64,
            mem_budget: mem,
            scratch_budget: 0,
            merge_workers: 0,
            kernel: alphasort_core::Kernel::Scalar,
        }
    }

    fn submit_via_broken_client(state: &Arc<State>, spec: &JobSpec) -> io::Result<()> {
        let mut wire = Vec::new();
        proto::send_payload(&mut wire, &vec![0u8; spec.input_bytes as usize]).unwrap();
        let mut client = BrokenClient {
            input: io::Cursor::new(wire),
        };
        handle_submit(&mut client, state, &spec.to_json())
    }

    #[test]
    fn failed_ack_after_admission_releases_budget_and_running() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        let err = submit_via_broken_client(&state, &one_record_spec(MIN_JOB_MEM)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        let core = state.core.lock().unwrap();
        assert_eq!(core.running, 0, "running count must unwind");
        assert!(core.admission.pool().idle(), "budget must be released");
        assert!(core.waiters.is_empty());
        assert_eq!(core.counters.failed, 1);
        let rec = core.jobs.get(&1).expect("job recorded");
        assert_eq!(rec.state, JobState::Failed);
        assert_eq!(rec.error, Some("client_gone"));
    }

    #[test]
    fn failed_ack_of_a_queued_job_leaves_no_stranded_waiter() {
        let state = test_state(PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        });
        // A resident job holds the whole pool, so the submit must queue.
        {
            let mut core = state.core.lock().unwrap();
            let mut promoted = Vec::new();
            assert_eq!(
                core.admission.offer(999, 1 << 20, 0, &mut promoted),
                Offer::Admitted
            );
            core.running += 1;
        }
        let err = submit_via_broken_client(&state, &one_record_spec(MIN_JOB_MEM)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        {
            let core = state.core.lock().unwrap();
            assert_eq!(core.admission.queue_depth(), 0, "job removed from queue");
            assert!(core.waiters.is_empty(), "no orphaned waiter");
            assert_eq!(core.counters.failed, 1);
            let rec = core.jobs.get(&1).expect("job recorded");
            assert_eq!(rec.state, JobState::Failed);
            assert_eq!(rec.error, Some("client_gone"));
        }
        // The resident's release finds nothing to promote — the stranded
        // job is truly gone — and the pool zeroes out.
        let mut core = state.core.lock().unwrap();
        let mut promoted = Vec::new();
        core.admission.release(1 << 20, 0, &mut promoted);
        core.running -= 1;
        assert!(promoted.is_empty(), "no ghost promotion");
        assert!(core.admission.pool().idle());
    }
}
