//! Admission control: FIFO-with-aging queueing over the budgeted pool.
//!
//! Policy, in one paragraph: a submitted job whose budget fits the pool is
//! admitted immediately. When the pool is exhausted the job queues; on
//! every release the queue is scanned **front to back** and any job whose
//! budget now fits is admitted — small jobs may *backfill* past a big job
//! stuck at the head, which keeps throughput up. Unbounded backfill would
//! starve the big job forever, so every time a job is jumped its *bypass
//! count* ages by one; once it reaches the configured limit the job
//! becomes a **barrier**: nothing behind it is admitted until the pool
//! drains enough for it to run. Past the queue bound, submits are shed
//! with the typed [`SortdError::Backpressure`] error. Aging is counted in
//! scheduling decisions (bypasses), not wall-clock — deterministic under
//! test and immune to clock skew. A `bypass_limit` of 0 degenerates to
//! strict FIFO: every queued job is born a barrier, backfill never
//! happens.
//!
//! The struct is pure state-machine — no threads, no clocks, no IO — so
//! the satellite unit tests (exhaustion queues, bound rejects, aging
//! promotes, cancel releases) drive it exhaustively; the
//! [`server`](crate::server) wraps it in a mutex and adds the wakeups.

use std::collections::VecDeque;

use alphasort_obs as obs;

use crate::job::SortdError;
use crate::pool::{Pool, PoolConfig};

/// Admission policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum queued (not yet admitted) jobs before submits are shed with
    /// [`SortdError::Backpressure`].
    ///
    /// Note the server holds each queued job's *full input payload* in
    /// memory (outside pool accounting) plus one parked connection
    /// thread, so worst-case queued residency is `queue_bound × max
    /// input size` — size this against that product, not queue depth
    /// taste alone.
    pub queue_bound: usize,
    /// How many times a queued job may be bypassed by backfill before it
    /// becomes a barrier no later job may jump — the no-starvation bound.
    ///
    /// `0` is an explicit **strict-FIFO** mode: every queued job is a
    /// barrier from birth, so backfill is disabled and nothing ever jumps
    /// the queue. In that mode no bypass can occur, so the `bypasses` and
    /// `aged_barriers` stats legitimately stay at zero.
    pub bypass_limit: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_bound: 256,
            bypass_limit: 8,
        }
    }
}

/// One queued job's bookkeeping.
#[derive(Clone, Copy, Debug)]
struct Waiting {
    id: u64,
    mem: u64,
    scratch: u64,
    /// Times backfill admitted a job from behind this one.
    bypassed: u32,
}

/// What [`Admission::offer`] decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Offer {
    /// Budget reserved; run now.
    Admitted,
    /// Pool exhausted; waiting at this depth (1 = next in line).
    Queued {
        /// Position in the queue, 1-based.
        depth: usize,
    },
    /// Shed (queue bound, drain) — the error says whether to retry.
    Rejected(SortdError),
}

/// The admission state machine: pool + queue + aging.
pub struct Admission {
    pool: Pool,
    queue: VecDeque<Waiting>,
    cfg: AdmissionConfig,
    draining: bool,
    /// Total backfill bypasses recorded (stats).
    pub bypasses: u64,
    /// Times a starved job aged into a barrier (stats).
    pub aged_barriers: u64,
}

impl Admission {
    /// Empty admission over a fresh pool.
    pub fn new(pool: PoolConfig, cfg: AdmissionConfig) -> Self {
        assert!(cfg.queue_bound > 0, "a zero queue bound sheds everything");
        Admission {
            pool: Pool::new(pool),
            queue: VecDeque::new(),
            cfg,
            draining: false,
            bypasses: 0,
            aged_barriers: 0,
        }
    }

    /// The pool (accounting reads).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Queued (not yet admitted) jobs.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The configured queue bound.
    pub fn queue_bound(&self) -> usize {
        self.cfg.queue_bound
    }

    /// Whether drain has started.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Offer a job (budgets already validated against pool totals).
    /// Either reserves and admits, queues, or sheds. May also admit
    /// *other* queued jobs freed by the scan; those come back in
    /// `promoted` exactly as from [`release`](Self::release).
    pub fn offer(&mut self, id: u64, mem: u64, scratch: u64, promoted: &mut Vec<u64>) -> Offer {
        if self.draining {
            return Offer::Rejected(SortdError::Draining);
        }
        if self.queue.len() >= self.cfg.queue_bound {
            obs::metrics::counter_add("sortd.admission.shed", 1);
            return Offer::Rejected(SortdError::Backpressure {
                depth: self.queue.len(),
                bound: self.cfg.queue_bound,
            });
        }
        // Enter at the back and run one scan: newcomers never jump the
        // queue except through the same backfill rule as everyone else.
        self.queue.push_back(Waiting {
            id,
            mem,
            scratch,
            bypassed: 0,
        });
        self.promote(promoted);
        match promoted.iter().position(|&p| p == id) {
            Some(i) => {
                promoted.remove(i);
                Offer::Admitted
            }
            None => {
                let depth = self
                    .queue
                    .iter()
                    .position(|w| w.id == id)
                    .expect("job is queued if not admitted")
                    + 1;
                Offer::Queued { depth }
            }
        }
    }

    /// Return a finished (or canceled-while-running) job's budget and
    /// admit whatever now fits; returns the admitted job ids in queue
    /// order. The caller wakes those jobs' waiters.
    pub fn release(&mut self, mem: u64, scratch: u64, promoted: &mut Vec<u64>) {
        self.pool.release(mem, scratch);
        self.promote(promoted);
    }

    /// Remove a still-queued job (client cancel). Returns whether it was
    /// found; a job already admitted is not here — the server handles that
    /// case by flagging the running job.
    pub fn cancel_queued(&mut self, id: u64) -> bool {
        match self.queue.iter().position(|w| w.id == id) {
            Some(i) => {
                self.queue.remove(i);
                true
            }
            None => false,
        }
    }

    /// Begin drain: stop admitting, dump the queue. Returns the queued
    /// job ids, which the server fails with the retryable
    /// [`SortdError::Draining`]. Running jobs are unaffected — their
    /// budgets come back through [`release`](Self::release) as they
    /// finish (with no queue left to promote into).
    pub fn drain(&mut self) -> Vec<u64> {
        self.draining = true;
        self.queue.drain(..).map(|w| w.id).collect()
    }

    /// One front-to-back scan: admit everything that fits, aging the jobs
    /// it jumps, honoring barriers.
    fn promote(&mut self, promoted: &mut Vec<u64>) {
        let mut i = 0;
        // Whether a job at an index < i has aged into a barrier.
        let mut barrier = false;
        while i < self.queue.len() {
            let w = self.queue[i];
            if !barrier && self.pool.fits(w.mem, w.scratch) {
                self.pool.reserve(w.mem, w.scratch);
                self.queue.remove(i);
                promoted.push(w.id);
                // Everything still ahead of position i was just bypassed.
                for k in 0..i {
                    let ahead = &mut self.queue[k];
                    ahead.bypassed += 1;
                    self.bypasses += 1;
                    obs::metrics::counter_add("sortd.admission.bypass", 1);
                    if ahead.bypassed == self.cfg.bypass_limit {
                        self.aged_barriers += 1;
                        obs::metrics::counter_add("sortd.admission.aged_barrier", 1);
                    }
                }
                // `i` now names the next candidate; barriers ahead may have
                // just formed, so re-check below before admitting past them.
                barrier = self.queue.iter().take(i).any(|a| a.bypassed >= self.cfg.bypass_limit);
                continue;
            }
            if w.bypassed >= self.cfg.bypass_limit {
                barrier = true;
            }
            i += 1;
        }
        self.publish();
    }

    fn publish(&self) {
        obs::metrics::gauge_set("sortd.queue.depth", self.queue.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adm(mem: u64, bound: usize, bypass: u32) -> Admission {
        Admission::new(
            PoolConfig {
                mem_total: mem,
                scratch_total: mem,
            },
            AdmissionConfig {
                queue_bound: bound,
                bypass_limit: bypass,
            },
        )
    }

    fn offer(a: &mut Admission, id: u64, mem: u64) -> Offer {
        let mut promoted = Vec::new();
        let o = a.offer(id, mem, 0, &mut promoted);
        assert!(promoted.is_empty(), "these tests never co-promote on offer");
        o
    }

    #[test]
    fn pool_exhaustion_queues_fifo() {
        let mut a = adm(100, 8, 4);
        assert_eq!(offer(&mut a, 1, 60), Offer::Admitted);
        assert_eq!(offer(&mut a, 2, 60), Offer::Queued { depth: 1 });
        assert_eq!(offer(&mut a, 3, 60), Offer::Queued { depth: 2 });
        assert_eq!(a.queue_depth(), 2);
        // Release admits in FIFO order: job 2 first.
        let mut promoted = Vec::new();
        a.release(60, 0, &mut promoted);
        assert_eq!(promoted, vec![2]);
        assert_eq!(a.queue_depth(), 1);
        let mut promoted = Vec::new();
        a.release(60, 0, &mut promoted);
        assert_eq!(promoted, vec![3]);
        assert_eq!(a.queue_depth(), 0);
        a.release(60, 0, &mut Vec::new());
        assert!(a.pool().idle(), "all budgets returned");
    }

    #[test]
    fn queue_bound_sheds_with_typed_backpressure() {
        let mut a = adm(100, 2, 4);
        assert_eq!(offer(&mut a, 1, 100), Offer::Admitted);
        assert!(matches!(offer(&mut a, 2, 10), Offer::Queued { .. }));
        assert!(matches!(offer(&mut a, 3, 10), Offer::Queued { .. }));
        match offer(&mut a, 4, 10) {
            Offer::Rejected(e) => {
                assert_eq!(e.code(), "backpressure");
                assert!(e.retryable(), "backpressure must invite a retry");
                assert_eq!(
                    e,
                    SortdError::Backpressure {
                        depth: 2,
                        bound: 2
                    }
                );
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Shedding reserves nothing and queues nothing.
        assert_eq!(a.queue_depth(), 2);
    }

    #[test]
    fn backfill_admits_small_jobs_past_a_stuck_big_one() {
        let mut a = adm(100, 16, 4);
        assert_eq!(offer(&mut a, 1, 80), Offer::Admitted);
        // Big job queues (needs 90, only 20 free); small one backfills.
        assert_eq!(offer(&mut a, 2, 90), Offer::Queued { depth: 1 });
        assert_eq!(offer(&mut a, 3, 15), Offer::Admitted);
        assert_eq!(a.bypasses, 1, "the big job was bypassed once");
        assert_eq!(a.queue_depth(), 1);
    }

    #[test]
    fn aging_promotes_a_starved_job_by_blocking_backfill() {
        // A 90-byte job starves behind a 40-byte resident while a stream
        // of 10-byte jobs backfills past it. After `bypass_limit` jumps it
        // becomes a barrier: backfill stops dead until it runs.
        let mut a = adm(100, 16, 3);
        assert_eq!(offer(&mut a, 1, 40), Offer::Admitted);
        assert_eq!(offer(&mut a, 2, 90), Offer::Queued { depth: 1 });
        // Three admit-and-finish backfills age the big job to its limit.
        for id in [3, 4, 5] {
            assert_eq!(offer(&mut a, id, 10), Offer::Admitted);
            let mut promoted = Vec::new();
            a.release(10, 0, &mut promoted);
            assert!(promoted.is_empty(), "90 still cannot fit beside 40");
        }
        assert_eq!(a.bypasses, 3);
        assert_eq!(a.aged_barriers, 1);
        // The pool has plenty of room for another small job, but the aged
        // job bars it: no admission, it queues behind the barrier.
        assert_eq!(offer(&mut a, 6, 10), Offer::Queued { depth: 2 });
        // Once the resident finishes, the starved job runs first — and the
        // job behind the barrier follows in the same scan (90+10 fits).
        let mut promoted = Vec::new();
        a.release(40, 0, &mut promoted);
        assert_eq!(promoted, vec![2, 6], "starved job first, then the queue");
        a.release(90, 0, &mut Vec::new());
        a.release(10, 0, &mut Vec::new());
        assert!(a.pool().idle());
    }

    #[test]
    fn bypass_limit_zero_is_strict_fifo() {
        let mut a = adm(100, 16, 0);
        assert_eq!(offer(&mut a, 1, 80), Offer::Admitted);
        // The head doesn't fit (needs 90, 20 free) and is born a barrier.
        assert_eq!(offer(&mut a, 2, 90), Offer::Queued { depth: 1 });
        // Job 3 *would* fit beside job 1 (10 ≤ 20 free) but may not jump
        // the barrier head: strict FIFO queues it behind.
        assert_eq!(offer(&mut a, 3, 10), Offer::Queued { depth: 2 });
        assert_eq!(a.bypasses, 0, "no backfill in strict FIFO");
        assert_eq!(a.aged_barriers, 0, "nothing ages when nothing jumps");
        // Releases admit in pure queue order.
        let mut promoted = Vec::new();
        a.release(80, 0, &mut promoted);
        assert_eq!(promoted, vec![2, 3], "head first, then its follower");
        a.release(90, 0, &mut Vec::new());
        a.release(10, 0, &mut Vec::new());
        assert!(a.pool().idle());
    }

    #[test]
    fn cancel_of_a_queued_job_releases_its_claim_on_the_future() {
        let mut a = adm(100, 16, 4);
        assert_eq!(offer(&mut a, 1, 100), Offer::Admitted);
        assert_eq!(offer(&mut a, 2, 100), Offer::Queued { depth: 1 });
        assert_eq!(offer(&mut a, 3, 50), Offer::Queued { depth: 2 });
        assert!(a.cancel_queued(2));
        assert!(!a.cancel_queued(2), "second cancel is a no-op");
        assert!(!a.cancel_queued(1), "running jobs are not in the queue");
        // With the canceled job gone, the release admits job 3 directly.
        let mut promoted = Vec::new();
        a.release(100, 0, &mut promoted);
        assert_eq!(promoted, vec![3]);
        // Cancel of a running job is a release at the server layer:
        a.release(50, 0, &mut Vec::new());
        assert!(a.pool().idle(), "cancel paths leak no budget");
    }

    #[test]
    fn drain_dumps_the_queue_and_stops_admission() {
        let mut a = adm(100, 16, 4);
        assert_eq!(offer(&mut a, 1, 100), Offer::Admitted);
        assert!(matches!(offer(&mut a, 2, 10), Offer::Queued { .. }));
        assert!(matches!(offer(&mut a, 3, 10), Offer::Queued { .. }));
        assert_eq!(a.drain(), vec![2, 3]);
        assert_eq!(a.queue_depth(), 0);
        match offer(&mut a, 4, 10) {
            Offer::Rejected(e) => {
                assert_eq!(e.code(), "draining");
                assert!(e.retryable());
            }
            other => panic!("drain must shed, got {other:?}"),
        }
        // The running job's release promotes nothing and zeroes the pool.
        let mut promoted = Vec::new();
        a.release(100, 0, &mut promoted);
        assert!(promoted.is_empty());
        assert!(a.pool().idle());
    }

    #[test]
    fn offer_can_co_promote_queued_jobs() {
        // A newcomer that doesn't fit can still trigger nothing; but a
        // newcomer that fits while earlier jobs also fit admits them all
        // in order. Construct: pool 100, job 1 (60) running, queue job 2
        // (50). Job 1 releases via release(); here instead check offer's
        // promoted vector: queue 2 (50), then offer 3 (30) while 60 used:
        // 2 doesn't fit (50 > 40), 3 fits (30 <= 40) — a bypass.
        let mut a = adm(100, 16, 4);
        assert_eq!(offer(&mut a, 1, 60), Offer::Admitted);
        assert_eq!(offer(&mut a, 2, 50), Offer::Queued { depth: 1 });
        let mut promoted = Vec::new();
        assert_eq!(a.offer(3, 30, 0, &mut promoted), Offer::Admitted);
        assert!(promoted.is_empty());
        assert_eq!(a.queue_depth(), 1);
        assert_eq!(a.bypasses, 1);
    }
}
