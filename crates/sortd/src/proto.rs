//! The sortd wire protocol, riding on netsort's checksummed frames.
//!
//! Every message is a netsort [`Frame`] — length-prefixed, CRC32C-trailed,
//! size-capped — so sortd inherits the exchange protocol's corruption
//! detection for free. The frame header's `from` field, a sender node id
//! in netsort, is repurposed as a **channel tag**:
//!
//! * [`CTRL`] frames carry one minijson document (`submit`, `status`,
//!   `stats`, `metrics`, `cancel`, `drain` requests; `ack`, `result`,
//!   `error` responses),
//! * [`PAYLOAD`] frames carry raw record bytes, batched under the frame
//!   cap and terminated by a `Done` frame on the payload channel.
//!
//! A submit conversation:
//!
//! ```text
//! client → server   Data(CTRL, submit manifest json)
//!                   Data(PAYLOAD, records)… Done(PAYLOAD)
//! server → client   Data(CTRL, ack {job_id, state, queue_depth})
//!                   …job queues, runs…
//!                   Data(CTRL, result {state:"done", …})
//!                   Data(PAYLOAD, sorted records)… Done(PAYLOAD)
//!        or         Data(CTRL, error {code, retryable, …})
//! ```
//!
//! `status`/`stats`/`metrics`/`cancel`/`drain` are single request/response
//! pairs on their own connections.
//!
//! # Telemetry documents (stable field names)
//!
//! The `stats` response is the human-scale snapshot:
//!
//! ```text
//! { "type": "stats", "uptime_ms": N,
//!   "pool":  { mem_total, mem_in_use, mem_hwm,
//!              scratch_total, scratch_in_use, scratch_hwm },
//!   "queue": { depth, bound, bypasses, aged_barriers },
//!   "running": N, "draining": bool,
//!   "jobs":  { queued, running, done, failed, canceled },   // per-state counts
//!   "counters": { submitted, done, failed, rejected, canceled },
//!   "latency": { queue_wait_us, exec_us, e2e_us } }         // each a summary:
//!                                            // { count, mean, p50, p90, p99, max }
//! ```
//!
//! The `metrics` response is the machine-scale snapshot: the same state as
//! one obs `MetricsSnapshot` JSON document (decodable with
//! `MetricsSnapshot::from_json`, so clients can `diff()` successive polls —
//! `sortd top` does exactly that) under a two-field envelope:
//!
//! ```text
//! { "type": "metrics", "uptime_ms": N,
//!   "counters":   { "sortd.jobs.submitted", "sortd.jobs.done",
//!                   "sortd.jobs.failed", "sortd.jobs.rejected",
//!                   "sortd.jobs.canceled", "sortd.admission.bypasses",
//!                   "sortd.admission.aged_barriers" },
//!   "gauges":     { "sortd.pool.mem_total", "sortd.pool.mem_in_use",
//!                   "sortd.pool.mem_hwm", "sortd.pool.scratch_total",
//!                   "sortd.pool.scratch_in_use", "sortd.pool.scratch_hwm",
//!                   "sortd.queue.depth", "sortd.queue.bound",
//!                   "sortd.running", "sortd.draining" },
//!   "histograms": { "sortd.queue_wait_us", "sortd.exec_us",
//!                   "sortd.e2e_us" } }      // full log2 bucket arrays
//! ```
//!
//! All latencies are microseconds. The histograms are recorded for every
//! job that ran (successes and execution failures) and are never reset —
//! they survive drain. These names are a wire contract: renaming one is a
//! breaking protocol change.

use std::io::{self, Read, Write};

use alphasort_minijson::Json;
use alphasort_netsort::Frame;

/// Channel tag for control (JSON) frames.
pub const CTRL: u32 = 0;
/// Channel tag for raw record payload frames.
pub const PAYLOAD: u32 = 1;

/// Payload batch size: well under [`Frame`]'s 16 MB cap, big enough that
/// framing overhead disappears.
pub const PAYLOAD_BATCH: usize = 1 << 20;

/// Send one control document.
pub fn send_ctrl(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    Frame::Data {
        from: CTRL,
        records: doc.dump().into_bytes(),
    }
    .write_to(w)?;
    w.flush()
}

/// Receive one control document; anything else on the wire is an error.
pub fn read_ctrl(r: &mut impl Read) -> io::Result<Json> {
    match Frame::read_from(r)? {
        Some(Frame::Data { from: CTRL, records }) => {
            let text = String::from_utf8(records).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("ctrl frame not UTF-8: {e}"))
            })?;
            Json::parse(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("ctrl frame: {e}")))
        }
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a ctrl frame, got {other:?}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed before the ctrl frame",
        )),
    }
}

/// Stream `bytes` as payload frames followed by the payload `Done`.
pub fn send_payload(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    for chunk in bytes.chunks(PAYLOAD_BATCH) {
        Frame::Data {
            from: PAYLOAD,
            records: chunk.to_vec(),
        }
        .write_to(w)?;
    }
    Frame::Done { from: PAYLOAD }.write_to(w)?;
    w.flush()
}

/// Collect payload frames until the payload `Done`, enforcing `expect`
/// bytes total (the submit manifest declared the length; a mismatch means
/// a confused client and must not reach the sorter).
pub fn read_payload(r: &mut impl Read, expect: u64) -> io::Result<Vec<u8>> {
    let mut buf = Vec::with_capacity(expect.min(64 << 20) as usize);
    loop {
        match Frame::read_from(r)? {
            Some(Frame::Data { from: PAYLOAD, records }) => {
                if buf.len() as u64 + records.len() as u64 > expect {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "payload overruns the manifest's {expect} bytes ({} and counting)",
                            buf.len() + records.len()
                        ),
                    ));
                }
                buf.extend_from_slice(&records);
            }
            Some(Frame::Done { from: PAYLOAD }) => break,
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected payload frames, got {other:?}"),
                ))
            }
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-payload",
                ))
            }
        }
    }
    if buf.len() as u64 != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("payload delivered {} bytes, manifest declared {expect}", buf.len()),
        ));
    }
    Ok(buf)
}

/// Cap on bytes discarded while draining a rejected submit's payload.
/// The declared length is untrusted on reject paths (validation just
/// failed), so the drain is bounded by this instead of the manifest.
pub const REJECT_DRAIN_CAP: u64 = 64 << 20;

/// Read and **discard** payload frames until the payload `Done`, end of
/// stream, or `cap` total bytes — one frame in memory at a time, nothing
/// accumulated. Reject paths use this instead of [`read_payload`]: a
/// manifest that failed validation must not get to size a server-side
/// buffer. Always returns `Ok` on a termination condition so the caller
/// can still send its error document; a client that streams past the cap
/// simply has the rest of its payload unread when the connection closes.
pub fn drain_payload(r: &mut impl Read, cap: u64) -> io::Result<()> {
    let mut dropped = 0u64;
    loop {
        match Frame::read_from(r)? {
            Some(Frame::Data { from: PAYLOAD, records }) => {
                dropped += records.len() as u64;
                if dropped > cap {
                    return Ok(());
                }
            }
            // Done, an off-channel frame, or EOF all end the drain; the
            // connection is being torn down either way.
            Some(_) | None => return Ok(()),
        }
    }
}

/// Build an `error` response document from a typed error.
pub fn error_doc(job_id: Option<u64>, err: &crate::job::SortdError) -> Json {
    let mut fields = vec![
        ("type".into(), Json::from("error")),
        ("code".into(), Json::from(err.code())),
        ("retryable".into(), Json::Bool(err.retryable())),
        ("message".into(), Json::from(err.to_string().as_str())),
    ];
    if let Some(id) = job_id {
        fields.push(("job_id".into(), Json::from(id)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SortdError;

    #[test]
    fn ctrl_roundtrip() {
        let doc = Json::Obj(vec![
            ("type".into(), Json::from("stats")),
            ("n".into(), Json::from(7u64)),
        ]);
        let mut wire = Vec::new();
        send_ctrl(&mut wire, &doc).unwrap();
        let got = read_ctrl(&mut wire.as_slice()).unwrap();
        assert_eq!(got.field_str("type").unwrap(), "stats");
        assert_eq!(got.field_u64("n").unwrap(), 7);
    }

    #[test]
    fn payload_roundtrip_batches_and_terminates() {
        let bytes: Vec<u8> = (0..3 * PAYLOAD_BATCH + 123).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        send_payload(&mut wire, &bytes).unwrap();
        let got = read_payload(&mut wire.as_slice(), bytes.len() as u64).unwrap();
        assert_eq!(got, bytes);
    }

    #[test]
    fn payload_length_is_enforced_both_ways() {
        let bytes = vec![7u8; 1_000];
        let mut wire = Vec::new();
        send_payload(&mut wire, &bytes).unwrap();
        // Short declaration: overrun caught before buffering past it.
        let err = read_payload(&mut wire.as_slice(), 999).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Long declaration: shortfall caught at Done.
        let err = read_payload(&mut wire.as_slice(), 1_001).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_payload_frame_fails_crc_not_silence() {
        let mut wire = Vec::new();
        send_payload(&mut wire, &[5u8; 400]).unwrap();
        wire[20] ^= 0x40;
        let err = read_payload(&mut wire.as_slice(), 400).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn drain_payload_discards_to_done_and_stops_at_the_cap() {
        // A well-terminated payload drains cleanly and consumes its Done.
        let mut wire = Vec::new();
        send_payload(&mut wire, &[3u8; 10_000]).unwrap();
        let mut r = wire.as_slice();
        drain_payload(&mut r, 1 << 20).unwrap();
        assert!(r.is_empty(), "drain consumed payload and Done");
        // Past the cap the drain stops without reading further frames —
        // the oversized tail (and its Done) stays on the wire unread.
        let mut wire = Vec::new();
        send_payload(&mut wire, &vec![9u8; 3 * PAYLOAD_BATCH]).unwrap();
        let mut r = wire.as_slice();
        drain_payload(&mut r, PAYLOAD_BATCH as u64).unwrap();
        assert!(!r.is_empty(), "drain stopped at the cap, tail unread");
        // A truncated stream (no Done) terminates instead of erroring.
        let mut wire = Vec::new();
        Frame::Data { from: PAYLOAD, records: vec![1u8; 64] }
            .write_to(&mut wire)
            .unwrap();
        drain_payload(&mut wire.as_slice(), 1 << 20).unwrap();
    }

    #[test]
    fn error_doc_carries_the_retry_contract() {
        let doc = error_doc(Some(9), &SortdError::Backpressure { depth: 4, bound: 4 });
        assert_eq!(doc.field_str("code").unwrap(), "backpressure");
        assert_eq!(doc.get("retryable").unwrap().as_bool(), Some(true));
        assert_eq!(doc.field_u64("job_id").unwrap(), 9);
    }
}
