//! A blocking client for the sortd wire protocol.
//!
//! One connection per request, mirroring the server's dispatch. The
//! interesting part of the API is error typing: a failed submit comes back
//! as [`ClientError::Remote`] carrying the server's stable `code` and
//! `retryable` bit, so fleet callers can implement honest retry policies
//! (back off on `backpressure`, give up on `budget_too_large`).

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use alphasort_dmgen::SplitMix64;
use alphasort_minijson::Json;

use crate::job::JobSpec;
use crate::proto;

/// How a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon answered with a typed error document.
    Remote {
        /// Stable machine-readable code (`backpressure`, `draining`, …).
        code: String,
        /// Whether the identical submit can succeed later.
        retryable: bool,
        /// Human-readable detail.
        message: String,
    },
    /// The conversation itself broke.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Remote { code, retryable, message } => {
                write!(f, "sortd error [{code}, retryable={retryable}]: {message}")
            }
            ClientError::Io(e) => write!(f, "sortd connection: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether the server said this submit may be retried verbatim.
    pub fn retryable(&self) -> bool {
        matches!(self, ClientError::Remote { retryable: true, .. })
    }

    /// The remote error code, if this was a typed remote error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Remote { code, .. } => Some(code),
            ClientError::Io(_) => None,
        }
    }
}

/// A completed submit: the sorted bytes plus what the ack and result said.
#[derive(Debug)]
pub struct SubmitResult {
    /// Server-assigned job id.
    pub job_id: u64,
    /// `true` if the ack said the job queued before running.
    pub queued: bool,
    /// Queue position at ack time (0 when admitted immediately).
    pub queue_depth: u64,
    /// Records sorted, from the result document.
    pub records: u64,
    /// The plan the daemon ran (`"OnePass"` / `"TwoPass"`, or `"cached"`
    /// when the daemon answered from its journal).
    pub plan: String,
    /// `true` if the daemon answered a re-submitted idempotency key from
    /// its journal instead of running the job again.
    pub duplicate: bool,
    /// The sorted output (empty for a journal-answered duplicate).
    pub output: Vec<u8>,
}

/// Retry policy for [`Client::submit_with_retry`]: bounded attempts with
/// jittered linear backoff. The jitter comes from a seeded [`SplitMix64`]
/// so fleet runs are reproducible — no wall-clock randomness.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 means no retry).
    pub attempts: u32,
    /// Backoff before retry `k` is `base * k` plus jitter in `[0, base)`.
    pub base_backoff: Duration,
    /// Seed for the jitter stream (and the generated idempotency key).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base_backoff: Duration::from_millis(10),
            seed: 0x5eed_50f7,
        }
    }
}

/// Client configuration: target daemon and socket timeouts.
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    write_timeout: Duration,
}

impl Client {
    /// Client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(30),
        }
    }

    /// Override the socket read timeout (submits park in the daemon's
    /// queue, so this bounds *server silence*, not job latency).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Override the socket write timeout. This bounds how long a submit
    /// can block pushing payload at a daemon that stopped reading.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Client {
        self.write_timeout = timeout;
        self
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let s = TcpStream::connect(self.addr)?;
        s.set_read_timeout(Some(self.timeout))?;
        s.set_write_timeout(Some(self.write_timeout))?;
        s.set_nodelay(true).ok();
        Ok(s)
    }

    /// Submit `input` under `spec`; blocks until the sorted bytes are back
    /// or the daemon says no.
    pub fn submit(&self, spec: &JobSpec, input: &[u8]) -> Result<SubmitResult, ClientError> {
        let mut s = self.connect()?;
        proto::send_ctrl(&mut s, &spec.to_json())?;
        proto::send_payload(&mut s, input)?;

        let ack = proto::read_ctrl(&mut s)?;
        check_remote(&ack)?;
        let job_id = ack.field_u64("job_id").map_err(invalid)?;
        let queued = ack.field_str("state").map_err(invalid)? == "queued";
        let queue_depth = ack.field_u64("queue_depth").unwrap_or(0);

        let result = proto::read_ctrl(&mut s)?;
        check_remote(&result)?;
        let output_bytes = result.field_u64("output_bytes").map_err(invalid)?;
        let output = proto::read_payload(&mut s, output_bytes)?;
        Ok(SubmitResult {
            job_id,
            queued,
            queue_depth,
            records: result.field_u64("records").unwrap_or(0),
            plan: result.field_str("plan").unwrap_or("?").to_string(),
            duplicate: result.get("duplicate").and_then(Json::as_bool).unwrap_or(false),
            output,
        })
    }

    /// Submit with bounded retries on *retryable* failures (`backpressure`,
    /// `draining`). Non-retryable errors and broken connections return
    /// immediately. Every attempt carries the same idempotency key — the
    /// spec's own if set, otherwise one derived from the policy seed — so
    /// a retry that races a late first-attempt completion is answered from
    /// the daemon's journal instead of running twice.
    pub fn submit_with_retry(
        &self,
        spec: &JobSpec,
        input: &[u8],
        policy: &RetryPolicy,
    ) -> Result<SubmitResult, ClientError> {
        let mut rng = SplitMix64::new(policy.seed);
        let mut spec = spec.clone();
        if spec.idem_key.is_none() {
            spec.idem_key = Some(format!("retry-{:016x}", rng.next_u64()));
        }
        let base_us = policy.base_backoff.as_micros().max(1) as u64;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.submit(&spec, input) {
                Ok(res) => return Ok(res),
                Err(e) if e.retryable() && attempt < policy.attempts.max(1) => {
                    let jitter = rng.next_below(base_us);
                    thread::sleep(Duration::from_micros(
                        base_us * u64::from(attempt) + jitter,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One-document request/response helper.
    fn roundtrip(&self, req: Json) -> Result<Json, ClientError> {
        let mut s = self.connect()?;
        proto::send_ctrl(&mut s, &req)?;
        let resp = proto::read_ctrl(&mut s)?;
        check_remote(&resp)?;
        Ok(resp)
    }

    /// Fetch a job's status document.
    pub fn status(&self, job_id: u64) -> Result<Json, ClientError> {
        self.roundtrip(Json::Obj(vec![
            ("type".into(), Json::from("status")),
            ("job_id".into(), Json::from(job_id)),
        ]))
    }

    /// Fetch the daemon's stats snapshot.
    pub fn stats(&self) -> Result<Json, ClientError> {
        self.roundtrip(Json::Obj(vec![("type".into(), Json::from("stats"))]))
    }

    /// Fetch the daemon's full metrics document (the `metrics` request).
    /// The payload past the `type`/`uptime_ms` envelope decodes with
    /// `obs::MetricsSnapshot::from_json`, so two polls can be `diff()`ed
    /// into interval rates — `sortd top` is built on this.
    pub fn metrics(&self) -> Result<Json, ClientError> {
        self.roundtrip(Json::Obj(vec![("type".into(), Json::from("metrics"))]))
    }

    /// Cancel a queued job. Returns `true` if the cancel landed while the
    /// job was still queued.
    pub fn cancel(&self, job_id: u64) -> Result<bool, ClientError> {
        let resp = self.roundtrip(Json::Obj(vec![
            ("type".into(), Json::from("cancel")),
            ("job_id".into(), Json::from(job_id)),
        ]))?;
        Ok(resp.field_str("type").map_err(invalid)? == "canceled")
    }

    /// Ask the daemon to drain; blocks until running jobs finish.
    pub fn drain(&self) -> Result<Json, ClientError> {
        self.roundtrip(Json::Obj(vec![("type".into(), Json::from("drain"))]))
    }
}

/// Turn an `error` document into [`ClientError::Remote`].
fn check_remote(doc: &Json) -> Result<(), ClientError> {
    if doc.field_str("type").ok() == Some("error") {
        return Err(ClientError::Remote {
            code: doc.field_str("code").unwrap_or("unknown").to_string(),
            retryable: doc.get("retryable").and_then(Json::as_bool).unwrap_or(false),
            message: doc.field_str("message").unwrap_or("").to_string(),
        });
    }
    Ok(())
}

fn invalid(e: impl std::fmt::Display) -> ClientError {
    ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}
