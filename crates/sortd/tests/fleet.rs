//! Fleet stress: hundreds of small sorts racing a few huge ones through
//! one daemon, every output byte-identical to the stable-sort oracle.
//!
//! This is the acceptance test for the service as a whole: admission must
//! interleave small jobs around the big ones without starving either, the
//! pool must account every byte back to zero, and no output may be
//! corrupted by the concurrency.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use alphasort_dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_obs::MetricsSnapshot;
use alphasort_sortd::{
    AdmissionConfig, Client, JobSpec, Kernel, PoolConfig, ScratchBacking, Sortd, SortdConfig,
};
use alphasort_stripefs::Volume;

fn oracle(mut data: Vec<u8>) -> Vec<u8> {
    records_of_mut(&mut data).sort_by_key(|r| r.key);
    data
}

fn start_daemon(pool: PoolConfig, admission: AdmissionConfig, backing: ScratchBacking) -> Sortd {
    Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool,
        admission,
        backing,
        client_read_timeout: Duration::from_secs(120),
        ..SortdConfig::default()
    })
    .expect("daemon starts")
}

fn submit_data(
    addr: SocketAddr,
    name: &str,
    data: Vec<u8>,
    mem: u64,
    scratch: u64,
) -> (Vec<u8>, Vec<u8>, bool) {
    let spec = JobSpec {
        name: name.into(),
        input_bytes: data.len() as u64,
        mem_budget: mem,
        scratch_budget: scratch,
        merge_workers: 0,
        kernel: Kernel::Scalar,
        ..JobSpec::default()
    };
    let client = Client::new(addr).with_timeout(Duration::from_secs(120));
    let mut delay = Duration::from_millis(5);
    // Honest retry loop: only retryable (backpressure) errors are retried.
    loop {
        match client.submit(&spec, &data) {
            Ok(res) => return (res.output, oracle(data), res.queued),
            Err(e) if e.retryable() => {
                thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => panic!("job {name} failed non-retryably: {e}"),
        }
    }
}

fn submit_one(
    addr: SocketAddr,
    name: &str,
    records: u64,
    seed: u64,
    mem: u64,
    scratch: u64,
) -> (Vec<u8>, Vec<u8>, bool) {
    let (data, _) = generate(GenConfig::datamation(records, seed));
    submit_data(addr, name, data, mem, scratch)
}

/// ≥200 small jobs race a few huge two-pass jobs; everything must match
/// the oracle and the pool must return to zero.
#[test]
fn fleet_of_small_jobs_races_huge_ones() {
    // A pool that fits one huge job (2 MB) plus two small ones (512 KB
    // each) at a time: with four huge jobs and eight small-job streams in
    // flight, admission *must* queue and interleave.
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 3 << 20,
            scratch_total: 64 << 20,
        },
        AdmissionConfig {
            queue_bound: 512,
            bypass_limit: 16,
        },
        ScratchBacking::Memory,
    );
    let addr = daemon.addr();

    const SMALL_JOBS: u64 = 200;
    const CLIENT_THREADS: u64 = 8;
    let queued_seen = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Huge job 0: 30 MB of input against a 2 MB budget — a forced two-pass
    // sort that occupies two-thirds of the pool for hundreds of
    // milliseconds, long enough for the whole small fleet to race it.
    {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(300_000, 1_000));
            let scratch = data.len() as u64 + RECORD_LEN as u64;
            let (out, want, queued) = submit_data(addr, "huge-0", data, 2 << 20, scratch);
            if queued {
                q.fetch_add(1, Ordering::Relaxed);
            }
            assert_eq!(out, want, "huge-0 output diverged from oracle");
        }));
    }
    // Gate on *observed* state, not sleeps: huge-0 must be running before
    // huge-1 is submitted, and huge-1 must be queued (2 MB cannot fit
    // beside huge-0's 2 MB in a 3 MB pool) before the fleet starts. Every
    // small job admitted after that point backfills past queued huge-1 and
    // must age it rather than starve it.
    wait_for(&daemon, |s| s.field_u64("running").unwrap() >= 1);
    {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(150_000, 1_001));
            let scratch = data.len() as u64 + RECORD_LEN as u64;
            let (out, want, queued) = submit_data(addr, "huge-1", data, 2 << 20, scratch);
            if queued {
                q.fetch_add(1, Ordering::Relaxed);
            }
            assert_eq!(out, want, "huge-1 output diverged from oracle");
        }));
    }
    wait_for(&daemon, |s| {
        s.get("queue").unwrap().field_u64("depth").unwrap() >= 1
    });
    // Hundreds of small one-pass jobs from a pool of client threads so the
    // daemon sees sustained concurrent load while the huge jobs run.
    for t in 0..CLIENT_THREADS {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            for j in 0..(SMALL_JOBS / CLIENT_THREADS) {
                let id = t * (SMALL_JOBS / CLIENT_THREADS) + j;
                let (data, _) = generate(GenConfig::datamation(200 + id, 2_000 + id));
                let (out, want, queued) =
                    submit_data(addr, &format!("small-{id}"), data, 512 << 10, 0);
                if queued {
                    q.fetch_add(1, Ordering::Relaxed);
                }
                assert_eq!(out, want, "small-{id} output diverged from oracle");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }

    // Service-level invariants after the storm.
    const ALL_JOBS: u64 = SMALL_JOBS + 2;
    let (total_done, failed_queued) = daemon.drain();
    assert_eq!(failed_queued, 0, "no jobs were left queued at drain");
    assert_eq!(total_done, ALL_JOBS, "every job completed");
    assert!(daemon.pool_idle(), "pool accounting did not return to zero");

    let stats = daemon.stats();
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.field_u64("done").unwrap(), ALL_JOBS);
    assert_eq!(counters.field_u64("failed").unwrap(), 0);
    let pool = stats.get("pool").unwrap();
    assert_eq!(pool.field_u64("mem_in_use").unwrap(), 0);
    assert_eq!(pool.field_u64("scratch_in_use").unwrap(), 0);
    let jobs = stats.get("jobs").unwrap();
    assert_eq!(jobs.field_u64("done").unwrap(), ALL_JOBS);
    assert_eq!(jobs.field_u64("queued").unwrap(), 0);
    assert_eq!(jobs.field_u64("running").unwrap(), 0);
    // The pool was actually contended: its high-water mark exceeds any
    // single job's budget (a small ran beside a huge), at least one job
    // queued, and the fleet backfilled past the queued huge job.
    assert!(pool.field_u64("mem_hwm").unwrap() > (2 << 20));
    assert!(
        queued_seen.load(Ordering::Relaxed) > 0,
        "the fleet never contended for the pool; the test is too easy"
    );
    assert!(
        stats.get("queue").unwrap().field_u64("bypasses").unwrap() > 0,
        "no small job ever backfilled past the queued huge one"
    );
}

/// Poll the daemon's stats snapshot until `pred` holds (10 s cap).
fn wait_for(daemon: &Sortd, pred: impl Fn(&alphasort_minijson::Json) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if pred(&daemon.stats()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never reached the expected state; last stats: {}",
            daemon.stats().dump()
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// Two-pass jobs spilling to one shared striped volume must not collide:
/// per-job namespaces keep their run files apart.
#[test]
fn concurrent_two_pass_jobs_share_a_striped_volume() {
    let disks = (0..2)
        .map(|i| {
            SimDisk::new(
                format!("scratch{i}"),
                catalog::uncapped(),
                Arc::new(MemStorage::new()),
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))));
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 4 << 20,
            scratch_total: 64 << 20,
        },
        AdmissionConfig::default(),
        ScratchBacking::SharedVolume(volume, 64 << 10),
    );
    let addr = daemon.addr();

    let mut handles = Vec::new();
    for j in 0..6u64 {
        handles.push(thread::spawn(move || {
            let (out, want, _) = submit_one(
                addr,
                &format!("striped-{j}"),
                4_000,
                5_000 + j,
                512 << 10,
                (4_000 * RECORD_LEN as u64) + RECORD_LEN as u64,
            );
            assert_eq!(out, want, "striped-{j} output diverged from oracle");
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    daemon.drain();
    assert!(daemon.pool_idle());
}

/// The daemon's own latency histograms must agree with what clients
/// measure from the outside, and must survive drain.
///
/// Each client thread times its `submit` calls wall-clock; the daemon
/// records `e2e_us` from manifest-parsed to result-settled. The daemon's
/// window is a strict subset of the client's (connect, payload upload,
/// and response download are outside it) and log2 buckets bound quantile
/// accuracy at a factor of two — so the assertion is agreement within a
/// band, not equality.
#[test]
fn daemon_latency_quantiles_agree_with_clients() {
    // A pool that runs two 512 KB jobs at a time under eight client
    // threads, so a real fraction of jobs queue and both sides see
    // queue wait inside their e2e windows.
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        },
        AdmissionConfig {
            queue_bound: 512, // deep enough that nothing hits backpressure
            bypass_limit: 16,
        },
        ScratchBacking::Memory,
    );
    let addr = daemon.addr();

    const JOBS: u64 = 64;
    const THREADS: u64 = 8;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(thread::spawn(move || {
            let mut lat_us = Vec::new();
            for j in 0..(JOBS / THREADS) {
                let id = t * (JOBS / THREADS) + j;
                let (data, _) = generate(GenConfig::datamation(1_500 + id, 9_000 + id));
                let spec = JobSpec {
                    name: format!("lat-{id}"),
                    input_bytes: data.len() as u64,
                    mem_budget: 512 << 10,
                    scratch_budget: 0,
                    merge_workers: 0,
                    kernel: Kernel::Scalar,
                    ..JobSpec::default()
                };
                let client = Client::new(addr).with_timeout(Duration::from_secs(120));
                let start = std::time::Instant::now();
                let res = client.submit(&spec, &data).expect("submit succeeds");
                lat_us.push(start.elapsed().as_micros() as f64);
                assert_eq!(res.output, oracle(data), "lat-{id} diverged from oracle");
            }
            lat_us
        }));
    }
    let mut client_us: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();
    client_us.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // The wire `metrics` request, asked before drain closes the listener.
    let wire = Client::new(addr).metrics().expect("metrics request answers");
    assert_eq!(wire.field_str("type").unwrap(), "metrics");
    assert!(wire.field_u64("uptime_ms").is_ok());
    let snap = MetricsSnapshot::from_json(&wire).expect("decodes as a MetricsSnapshot");
    assert_eq!(snap.counters["sortd.jobs.submitted"], JOBS);
    assert_eq!(snap.counters["sortd.jobs.done"], JOBS);
    let e2e = &snap.histograms["sortd.e2e_us"];
    assert_eq!(e2e.count(), JOBS, "one e2e sample per job that ran");
    // Contention actually happened: somebody waited in the queue.
    assert!(
        snap.histograms["sortd.queue_wait_us"].max().unwrap() > 0,
        "no job ever queued; the test is too easy"
    );

    let pct = |v: &[f64], q: f64| v[((v.len() - 1) as f64 * q) as usize];
    for q in [0.50, 0.99] {
        let daemon_q = e2e.quantile(q).unwrap();
        let client_q = pct(&client_us, q);
        assert!(
            daemon_q <= client_q * 2.5 + 5_000.0 && daemon_q >= client_q / 3.0 - 5_000.0,
            "q{q}: daemon {daemon_q:.0}µs vs client {client_q:.0}µs out of band"
        );
    }

    // Histograms survive drain: accounting stops admitting, not counting.
    daemon.drain();
    let stats = daemon.stats();
    let e2e_summary = stats.get("latency").unwrap().get("e2e_us").unwrap();
    assert_eq!(e2e_summary.field_u64("count").unwrap(), JOBS);
    assert!(e2e_summary.field_f64("p99").unwrap() > 0.0);
}

/// Oversized manifests are rejected immediately with a non-retryable
/// typed error, not queued forever.
#[test]
fn hopeless_manifest_is_rejected_not_queued() {
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        },
        AdmissionConfig::default(),
        ScratchBacking::Memory,
    );
    let (data, _) = generate(GenConfig::datamation(100, 7));
    let spec = JobSpec {
        name: "hopeless".into(),
        input_bytes: data.len() as u64,
        mem_budget: 8 << 20, // eight times the pool total
        scratch_budget: 0,
        merge_workers: 0,
        kernel: Kernel::Scalar,
        ..JobSpec::default()
    };
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(10));
    let err = client.submit(&spec, &data).expect_err("must be rejected");
    assert_eq!(err.code(), Some("budget_too_large"));
    assert!(!err.retryable());
}

/// Backpressure convergence under the bounded retry policy: a queue bound
/// of 1 and a pool that fits one job at a time, hammered by more clients
/// than slots. Every client retries `backpressure` through
/// `submit_with_retry` with its own idempotency key; the fleet must
/// converge with every job completing **exactly once** — no duplicate
/// executions (the dedupe counter stays zero because no first attempt ever
/// both succeeded and got retried), no lost jobs, pool back to zero.
#[test]
fn backpressure_fleet_converges_exactly_once_under_bounded_retry() {
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 1 << 20, // exactly one job's budget
            scratch_total: 1 << 20,
        },
        AdmissionConfig {
            queue_bound: 1,
            bypass_limit: 4,
        },
        ScratchBacking::Memory,
    );
    let addr = daemon.addr();

    const CLIENTS: u64 = 8;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(2_000, 9_100 + c));
            let spec = JobSpec {
                name: format!("bp-{c}"),
                input_bytes: data.len() as u64,
                mem_budget: 1 << 20,
                scratch_budget: 0,
                idem_key: Some(format!("bp-key-{c}")),
                ..JobSpec::default()
            };
            let client = Client::new(addr).with_timeout(Duration::from_secs(120));
            let policy = alphasort_sortd::RetryPolicy {
                attempts: 200,
                base_backoff: Duration::from_millis(1),
                seed: 0xbead + c,
            };
            let res = client
                .submit_with_retry(&spec, &data, &policy)
                .expect("fleet job must converge through backpressure");
            assert!(!res.duplicate, "no retry may observe a completed twin");
            assert_eq!(res.output, oracle(data), "output diverged under backpressure churn");
        }));
    }
    for h in handles {
        h.join().expect("backpressure client panicked");
    }

    let stats = daemon.stats();
    let counters = stats.get("counters").unwrap();
    assert_eq!(
        counters.field_u64("done").unwrap(),
        CLIENTS,
        "every job exactly once; stats: {}",
        stats.dump()
    );
    assert_eq!(counters.field_u64("duplicates").unwrap(), 0);
    daemon.drain();
    assert!(daemon.pool_idle(), "pool accounting did not converge to zero");
}
