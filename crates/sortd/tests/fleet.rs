//! Fleet stress: hundreds of small sorts racing a few huge ones through
//! one daemon, every output byte-identical to the stable-sort oracle.
//!
//! This is the acceptance test for the service as a whole: admission must
//! interleave small jobs around the big ones without starving either, the
//! pool must account every byte back to zero, and no output may be
//! corrupted by the concurrency.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use alphasort_dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_iosim::{catalog, IoEngine, MemStorage, Pacing, SimDisk};
use alphasort_sortd::{
    AdmissionConfig, Client, JobSpec, PoolConfig, ScratchBacking, Sortd, SortdConfig,
};
use alphasort_stripefs::Volume;

fn oracle(mut data: Vec<u8>) -> Vec<u8> {
    records_of_mut(&mut data).sort_by_key(|r| r.key);
    data
}

fn start_daemon(pool: PoolConfig, admission: AdmissionConfig, backing: ScratchBacking) -> Sortd {
    Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool,
        admission,
        backing,
        client_read_timeout: Duration::from_secs(120),
    })
    .expect("daemon starts")
}

fn submit_data(
    addr: SocketAddr,
    name: &str,
    data: Vec<u8>,
    mem: u64,
    scratch: u64,
) -> (Vec<u8>, Vec<u8>, bool) {
    let spec = JobSpec {
        name: name.into(),
        input_bytes: data.len() as u64,
        mem_budget: mem,
        scratch_budget: scratch,
        merge_workers: 0,
    };
    let client = Client::new(addr).with_timeout(Duration::from_secs(120));
    let mut delay = Duration::from_millis(5);
    // Honest retry loop: only retryable (backpressure) errors are retried.
    loop {
        match client.submit(&spec, &data) {
            Ok(res) => return (res.output, oracle(data), res.queued),
            Err(e) if e.retryable() => {
                thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
            Err(e) => panic!("job {name} failed non-retryably: {e}"),
        }
    }
}

fn submit_one(
    addr: SocketAddr,
    name: &str,
    records: u64,
    seed: u64,
    mem: u64,
    scratch: u64,
) -> (Vec<u8>, Vec<u8>, bool) {
    let (data, _) = generate(GenConfig::datamation(records, seed));
    submit_data(addr, name, data, mem, scratch)
}

/// ≥200 small jobs race a few huge two-pass jobs; everything must match
/// the oracle and the pool must return to zero.
#[test]
fn fleet_of_small_jobs_races_huge_ones() {
    // A pool that fits one huge job (2 MB) plus two small ones (512 KB
    // each) at a time: with four huge jobs and eight small-job streams in
    // flight, admission *must* queue and interleave.
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 3 << 20,
            scratch_total: 64 << 20,
        },
        AdmissionConfig {
            queue_bound: 512,
            bypass_limit: 16,
        },
        ScratchBacking::Memory,
    );
    let addr = daemon.addr();

    const SMALL_JOBS: u64 = 200;
    const CLIENT_THREADS: u64 = 8;
    let queued_seen = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Huge job 0: 30 MB of input against a 2 MB budget — a forced two-pass
    // sort that occupies two-thirds of the pool for hundreds of
    // milliseconds, long enough for the whole small fleet to race it.
    {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(300_000, 1_000));
            let scratch = data.len() as u64 + RECORD_LEN as u64;
            let (out, want, queued) = submit_data(addr, "huge-0", data, 2 << 20, scratch);
            if queued {
                q.fetch_add(1, Ordering::Relaxed);
            }
            assert_eq!(out, want, "huge-0 output diverged from oracle");
        }));
    }
    // Gate on *observed* state, not sleeps: huge-0 must be running before
    // huge-1 is submitted, and huge-1 must be queued (2 MB cannot fit
    // beside huge-0's 2 MB in a 3 MB pool) before the fleet starts. Every
    // small job admitted after that point backfills past queued huge-1 and
    // must age it rather than starve it.
    wait_for(&daemon, |s| s.field_u64("running").unwrap() >= 1);
    {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(150_000, 1_001));
            let scratch = data.len() as u64 + RECORD_LEN as u64;
            let (out, want, queued) = submit_data(addr, "huge-1", data, 2 << 20, scratch);
            if queued {
                q.fetch_add(1, Ordering::Relaxed);
            }
            assert_eq!(out, want, "huge-1 output diverged from oracle");
        }));
    }
    wait_for(&daemon, |s| {
        s.get("queue").unwrap().field_u64("depth").unwrap() >= 1
    });
    // Hundreds of small one-pass jobs from a pool of client threads so the
    // daemon sees sustained concurrent load while the huge jobs run.
    for t in 0..CLIENT_THREADS {
        let q = Arc::clone(&queued_seen);
        handles.push(thread::spawn(move || {
            for j in 0..(SMALL_JOBS / CLIENT_THREADS) {
                let id = t * (SMALL_JOBS / CLIENT_THREADS) + j;
                let (data, _) = generate(GenConfig::datamation(200 + id, 2_000 + id));
                let (out, want, queued) =
                    submit_data(addr, &format!("small-{id}"), data, 512 << 10, 0);
                if queued {
                    q.fetch_add(1, Ordering::Relaxed);
                }
                assert_eq!(out, want, "small-{id} output diverged from oracle");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }

    // Service-level invariants after the storm.
    const ALL_JOBS: u64 = SMALL_JOBS + 2;
    let (total_done, failed_queued) = daemon.drain();
    assert_eq!(failed_queued, 0, "no jobs were left queued at drain");
    assert_eq!(total_done, ALL_JOBS, "every job completed");
    assert!(daemon.pool_idle(), "pool accounting did not return to zero");

    let stats = daemon.stats();
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.field_u64("done").unwrap(), ALL_JOBS);
    assert_eq!(counters.field_u64("failed").unwrap(), 0);
    let pool = stats.get("pool").unwrap();
    assert_eq!(pool.field_u64("mem_used").unwrap(), 0);
    assert_eq!(pool.field_u64("scratch_used").unwrap(), 0);
    // The pool was actually contended: its high-water mark exceeds any
    // single job's budget (a small ran beside a huge), at least one job
    // queued, and the fleet backfilled past the queued huge job.
    assert!(pool.field_u64("mem_hwm").unwrap() > (2 << 20));
    assert!(
        queued_seen.load(Ordering::Relaxed) > 0,
        "the fleet never contended for the pool; the test is too easy"
    );
    assert!(
        stats.get("queue").unwrap().field_u64("bypasses").unwrap() > 0,
        "no small job ever backfilled past the queued huge one"
    );
}

/// Poll the daemon's stats snapshot until `pred` holds (10 s cap).
fn wait_for(daemon: &Sortd, pred: impl Fn(&alphasort_minijson::Json) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if pred(&daemon.stats()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never reached the expected state; last stats: {}",
            daemon.stats().dump()
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// Two-pass jobs spilling to one shared striped volume must not collide:
/// per-job namespaces keep their run files apart.
#[test]
fn concurrent_two_pass_jobs_share_a_striped_volume() {
    let disks = (0..2)
        .map(|i| {
            SimDisk::new(
                format!("scratch{i}"),
                catalog::uncapped(),
                Arc::new(MemStorage::new()),
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))));
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 4 << 20,
            scratch_total: 64 << 20,
        },
        AdmissionConfig::default(),
        ScratchBacking::SharedVolume(volume, 64 << 10),
    );
    let addr = daemon.addr();

    let mut handles = Vec::new();
    for j in 0..6u64 {
        handles.push(thread::spawn(move || {
            let (out, want, _) = submit_one(
                addr,
                &format!("striped-{j}"),
                4_000,
                5_000 + j,
                512 << 10,
                (4_000 * RECORD_LEN as u64) + RECORD_LEN as u64,
            );
            assert_eq!(out, want, "striped-{j} output diverged from oracle");
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    daemon.drain();
    assert!(daemon.pool_idle());
}

/// Oversized manifests are rejected immediately with a non-retryable
/// typed error, not queued forever.
#[test]
fn hopeless_manifest_is_rejected_not_queued() {
    let daemon = start_daemon(
        PoolConfig {
            mem_total: 1 << 20,
            scratch_total: 1 << 20,
        },
        AdmissionConfig::default(),
        ScratchBacking::Memory,
    );
    let (data, _) = generate(GenConfig::datamation(100, 7));
    let spec = JobSpec {
        name: "hopeless".into(),
        input_bytes: data.len() as u64,
        mem_budget: 8 << 20, // eight times the pool total
        scratch_budget: 0,
        merge_workers: 0,
    };
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(10));
    let err = client.submit(&spec, &data).expect_err("must be rejected");
    assert_eq!(err.code(), Some("budget_too_large"));
    assert!(!err.retryable());
}
