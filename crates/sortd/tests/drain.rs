//! Graceful drain under load: a SIGTERM-style drain lands while a big job
//! is running and more are queued.
//!
//! The contract being pinned:
//! * the running job finishes normally and its client gets correct bytes,
//! * every queued job fails fast with the retryable `draining` error,
//! * new submits after drain are refused (connection or typed error),
//! * the pool returns to zero and the listener socket is closed.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use alphasort_dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_sortd::{
    AdmissionConfig, Client, ClientError, JobSpec, Kernel, PoolConfig, ScratchBacking, Sortd,
    SortdConfig,
};

fn oracle(mut data: Vec<u8>) -> Vec<u8> {
    records_of_mut(&mut data).sort_by_key(|r| r.key);
    data
}

fn spec(name: &str, input: u64, mem: u64, scratch: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input_bytes: input,
        mem_budget: mem,
        scratch_budget: scratch,
        merge_workers: 0,
        kernel: Kernel::Scalar,
        ..JobSpec::default()
    }
}

#[test]
fn drain_mid_fleet_finishes_running_and_fails_queued_retryably() {
    let daemon = Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool: PoolConfig {
            mem_total: 3 << 20,
            scratch_total: 64 << 20,
        },
        admission: AdmissionConfig::default(),
        backing: ScratchBacking::Memory,
        client_read_timeout: Duration::from_secs(120),
        ..SortdConfig::default()
    })
    .expect("daemon starts");
    let addr = daemon.addr();

    // Job A: big two-pass sort that will be mid-flight when drain lands.
    let big = thread::spawn(move || {
        let (data, _) = generate(GenConfig::datamation(300_000, 31));
        let scratch = data.len() as u64 + RECORD_LEN as u64;
        let client = Client::new(addr).with_timeout(Duration::from_secs(120));
        let out = client
            .submit(&spec("big", data.len() as u64, 2 << 20, scratch), &data)
            .expect("the running job must complete through a drain");
        assert_eq!(out.output, oracle(data), "big job corrupted by drain");
    });
    wait(&daemon, |running, _| running >= 1);

    // Two more big jobs that cannot fit beside A: they queue.
    let drained_errors = Arc::new(AtomicU64::new(0));
    let mut queued = Vec::new();
    for j in 0..2u64 {
        let errs = Arc::clone(&drained_errors);
        queued.push(thread::spawn(move || {
            let (data, _) = generate(GenConfig::datamation(30_000, 40 + j));
            let scratch = data.len() as u64 + RECORD_LEN as u64;
            let client = Client::new(addr).with_timeout(Duration::from_secs(120));
            match client.submit(&spec("queued", data.len() as u64, 2 << 20, scratch), &data) {
                Ok(_) => panic!("queued job ran through a drain"),
                Err(e) => {
                    assert_eq!(e.code(), Some("draining"), "wrong failure: {e}");
                    assert!(e.retryable(), "drain failures must be retryable");
                    errs.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    wait(&daemon, |_, depth| depth >= 2);

    // Drain lands mid-fleet, over the wire like a supervisor would send it.
    let resp = Client::new(addr)
        .with_timeout(Duration::from_secs(120))
        .drain()
        .expect("drain request");
    assert_eq!(resp.field_str("type").unwrap(), "drained");
    assert_eq!(resp.field_u64("total_done").unwrap(), 1, "only the big job ran");
    assert_eq!(resp.field_u64("failed_queued").unwrap(), 2);

    big.join().expect("big job client panicked");
    for q in queued {
        q.join().expect("queued job client panicked");
    }
    assert_eq!(drained_errors.load(Ordering::Relaxed), 2);

    // Pool accounting is back to zero and the daemon refuses new work:
    // the acceptor is stopped, so the port no longer answers.
    assert!(daemon.pool_idle(), "pool accounting did not return to zero");
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting after drain"
    );
}

/// Poll running count and queue depth until `pred` holds (10 s cap).
fn wait(daemon: &Sortd, pred: impl Fn(u64, u64) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let s = daemon.stats();
        let running = s.field_u64("running").unwrap();
        let depth = s.get("queue").unwrap().field_u64("depth").unwrap();
        if pred(running, depth) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never reached the expected state; last stats: {}",
            s.dump()
        );
        thread::sleep(Duration::from_millis(2));
    }
}

/// A second drain (idempotence) and post-drain submits are sane even when
/// the daemon drained while completely idle.
#[test]
fn drain_of_an_idle_daemon_is_immediate_and_idempotent() {
    let daemon = Sortd::start(SortdConfig::default()).expect("daemon starts");
    let addr = daemon.addr();
    let (total_done, failed) = daemon.drain();
    assert_eq!((total_done, failed), (0, 0));
    let (total_done, failed) = daemon.drain();
    assert_eq!((total_done, failed), (0, 0));
    assert!(daemon.pool_idle());
    assert!(TcpStream::connect(addr).is_err(), "listener survived drain");
}

/// A client that submits against a draining daemon gets the typed,
/// retryable error rather than a hang or a reset.
#[test]
fn submit_during_drain_is_refused_with_the_typed_error() {
    let daemon = Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool: PoolConfig {
            mem_total: 3 << 20,
            scratch_total: 64 << 20,
        },
        admission: AdmissionConfig::default(),
        backing: ScratchBacking::Memory,
        client_read_timeout: Duration::from_secs(120),
        ..SortdConfig::default()
    })
    .expect("daemon starts");
    let addr = daemon.addr();

    // Hold the daemon open with a long-running job, drain concurrently,
    // then race a submit in before the acceptor shuts.
    let big = thread::spawn(move || {
        let (data, _) = generate(GenConfig::datamation(300_000, 77));
        let scratch = data.len() as u64 + RECORD_LEN as u64;
        Client::new(addr)
            .with_timeout(Duration::from_secs(120))
            .submit(&spec("big", data.len() as u64, 2 << 20, scratch), &data)
            .expect("running job completes");
    });
    wait(&daemon, |running, _| running >= 1);

    let drainer = thread::spawn(move || {
        // In-process drain: blocks until the big job finishes.
        daemon.drain();
        daemon
    });
    // Submits racing the drain must either hit the typed draining error
    // (acceptor still up, admission refusing) or a connection error
    // (acceptor already gone) — never a hang and never a successful run.
    let (data, _) = generate(GenConfig::datamation(100, 9));
    let client = Client::new(addr).with_timeout(Duration::from_secs(10));
    loop {
        match client.submit(&spec("late", data.len() as u64, 1 << 20, 0), &data) {
            Err(ClientError::Remote { code, retryable, .. }) => {
                assert_eq!(code, "draining");
                assert!(retryable);
                break;
            }
            Err(ClientError::Io(_)) => break, // acceptor already stopped
            Ok(_) => {
                // Raced in before the drain flag was set; try again.
                thread::sleep(Duration::from_millis(1));
            }
        }
    }
    big.join().expect("big job client panicked");
    let daemon = drainer.join().expect("drain panicked");
    assert!(daemon.pool_idle());
}
