//! Write-timeout regression tests: neither side of the sortd wire may
//! block forever pushing bytes at a peer that stopped reading.
//!
//! * Server side: a client that submits a job and then never reads the
//!   response would, without `SO_SNDTIMEO`, pin the connection thread in
//!   `write(2)` forever once the socket buffers fill. With the configured
//!   write timeout the server abandons the response and closes the
//!   connection in bounded time.
//! * Client side: a daemon (here: a listener that accepts and then reads
//!   nothing) that stops consuming the payload stream must surface as a
//!   bounded `ClientError::Io`, not a hung fleet thread.

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use alphasort_dmgen::{generate, GenConfig};
use alphasort_sortd::{
    proto, AdmissionConfig, Client, ClientError, JobSpec, PoolConfig, ScratchBacking, Sortd,
    SortdConfig,
};

/// Big enough to overflow both peers' socket buffers by a wide margin, so
/// the writer genuinely blocks rather than fire-and-forgetting into the
/// kernel.
const STUCK_RECORDS: u64 = 250_000;

fn spec(name: &str, input: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input_bytes: input,
        mem_budget: 64 << 20,
        scratch_budget: 0,
        ..JobSpec::default()
    }
}

#[test]
fn server_abandons_a_response_nobody_reads() {
    let daemon = Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool: PoolConfig {
            mem_total: 128 << 20,
            scratch_total: 1 << 30,
        },
        admission: AdmissionConfig::default(),
        backing: ScratchBacking::Memory,
        client_write_timeout: Duration::from_millis(200),
        ..SortdConfig::default()
    })
    .expect("daemon starts");

    let (data, _) = generate(GenConfig::datamation(STUCK_RECORDS, 51));
    let mut s = TcpStream::connect(daemon.addr()).unwrap();
    proto::send_ctrl(&mut s, &spec("unread", data.len() as u64).to_json()).unwrap();
    proto::send_payload(&mut s, &data).unwrap();
    let ack = proto::read_ctrl(&mut s).unwrap();
    assert_eq!(ack.field_str("type").unwrap(), "ack");

    // Deliberately read nothing more. The job finishes, the server starts
    // writing ~24 MB of sorted records at our full socket buffer, and its
    // write timeout expires. We must then observe the connection close in
    // bounded time — draining what the kernel buffered until EOF/reset.
    std::thread::sleep(Duration::from_millis(600));
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    let mut sink = [0u8; 64 << 10];
    loop {
        match s.read(&mut sink) {
            Ok(0) | Err(_) => break, // EOF or reset: the server gave up
            Ok(_) => {}
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "server never abandoned the unread response"
        );
    }

    // The stuck client cost the daemon nothing durable: the job settled
    // and a drain completes promptly with the pool back to zero.
    let (done, _) = daemon.drain();
    assert_eq!(done, 1, "the job itself must have completed");
    assert!(daemon.pool_idle(), "abandoned response leaked pool budget");
}

#[test]
fn client_submit_times_out_against_a_daemon_that_stops_reading() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept and then never read: the client's payload stream jams once
    // the socket buffers fill.
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(3));
        drop(stream);
    });

    let (data, _) = generate(GenConfig::datamation(STUCK_RECORDS, 52));
    let client = Client::new(addr)
        .with_timeout(Duration::from_secs(30))
        .with_write_timeout(Duration::from_millis(200));
    let started = Instant::now();
    let err = client
        .submit(&spec("jammed", data.len() as u64), &data)
        .expect_err("submit into a wedged daemon must fail, not hang");
    assert!(
        matches!(err, ClientError::Io(_)),
        "expected a socket-level failure, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "write timeout did not bound the stall: {:?}",
        started.elapsed()
    );
    hold.join().unwrap();
}
