//! Restart recovery over the wire: a daemon pointed at the journal and
//! scratch directory of a killed predecessor must
//!
//! * answer re-submitted keys of *settled* jobs from the record (at most
//!   once — no re-run, `duplicate: true` on the wire),
//! * re-run re-submitted keys of *interrupted* jobs with their surviving
//!   pass-1 runs resumed, so only the lost tail re-forms,
//! * sweep interrupted scratch whose client never returns, after the
//!   configured grace,
//! * enforce per-job deadlines with the typed, non-retryable
//!   `deadline_exceeded` error.
//!
//! The "kill" is staged, not delivered: the predecessor's durable state —
//! journal records, the scratch run manifest, sealed run bytes on the
//! striped volume's disk images — is built exactly as a SIGKILL would
//! leave it, then a fresh daemon starts over the same files. The CI chaos
//! job covers the real-signal version of the same contract.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alphasort_core::driver::{ScratchStore, StripeScratch};
use alphasort_core::io::RecordSink as _;
use alphasort_dmgen::{generate, records_of_mut, GenConfig, RECORD_LEN};
use alphasort_iosim::{catalog, FileStorage, IoEngine, Pacing, SimDisk, Storage};
use alphasort_sortd::{
    AdmissionConfig, Client, ClientError, JobSpec, Journal, JournalRecord, PoolConfig,
    ScratchBacking, Sortd, SortdConfig,
};
use alphasort_stripefs::Volume;

const CHUNK: u64 = 64 << 10;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "sortd-recovery-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The striped scratch volume over disk-image files, reopened the way a
/// restarted `sortd serve --scratch-dir` reopens them.
fn file_volume(dir: &Path) -> Arc<Volume> {
    let disks = (0..2)
        .map(|i| {
            let img = dir.join(format!("disk{i}.img"));
            let storage: Arc<dyn Storage> = Arc::new(if img.exists() {
                FileStorage::open(&img).unwrap()
            } else {
                FileStorage::create(&img).unwrap()
            });
            SimDisk::new(format!("s{i}"), catalog::uncapped(), storage, Pacing::Modeled, None)
        })
        .collect();
    Arc::new(Volume::new(Arc::new(IoEngine::new(disks))))
}

fn oracle(mut data: Vec<u8>) -> Vec<u8> {
    records_of_mut(&mut data).sort_by_key(|r| r.key);
    data
}

fn spec(name: &str, key: &str, input: u64, mem: u64, scratch: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        input_bytes: input,
        mem_budget: mem,
        scratch_budget: scratch,
        idem_key: Some(key.into()),
        ..JobSpec::default()
    }
}

fn start(journal: &Path, scratch: &Path, grace: Duration) -> Sortd {
    Sortd::start(SortdConfig {
        listen: "127.0.0.1:0".into(),
        pool: PoolConfig {
            mem_total: 64 << 20,
            scratch_total: 256 << 20,
        },
        admission: AdmissionConfig::default(),
        backing: ScratchBacking::SharedVolume(file_volume(scratch), CHUNK),
        journal: Some(journal.to_path_buf()),
        recovered_grace: grace,
        ..SortdConfig::default()
    })
    .expect("daemon starts")
}

fn counter(daemon: &Sortd, name: &str) -> u64 {
    daemon.stats().get("counters").unwrap().field_u64(name).unwrap()
}

/// Poll a counter until it reaches `want` (5 s cap) — for watchdog-driven
/// transitions that have no client to block on.
fn wait_counter(daemon: &Sortd, name: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(daemon, name) < want {
        assert!(
            Instant::now() < deadline,
            "{name} never reached {want}; stats: {}",
            daemon.stats().dump()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn restart_dedupes_settled_keys_and_resumes_interrupted_scratch() {
    let journal_dir = tmp_dir("restart-journal");
    let scratch_dir = tmp_dir("restart-scratch");

    // ---- Life 1: a settled small job, then a staged kill mid-elephant.
    let (little, _) = generate(GenConfig::datamation(500, 21));
    let little_records;
    {
        let daemon = start(&journal_dir, &scratch_dir, Duration::from_secs(60));
        let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(60));
        let res = client
            .submit(&spec("little", "key-little", little.len() as u64, 4 << 20, 0), &little)
            .expect("small job completes");
        assert_eq!(res.output, oracle(little.clone()));
        little_records = res.records;
        daemon.drain();
    }

    // The elephant: journaled `running` with one sealed pass-1 run on the
    // volume — the exact durable residue of a SIGKILL mid two-pass sort.
    let (elephant, _) = generate(GenConfig::datamation(4_000, 22));
    let e_spec = spec(
        "elephant",
        "key-elephant",
        elephant.len() as u64,
        128 << 10,
        elephant.len() as u64,
    );
    // Mirror of the executor's run-length derivation (mem/4 per record,
    // clamped); resume validates this geometry before reusing runs.
    let run_records = (e_spec.mem_budget / 4 / RECORD_LEN as u64).clamp(256, 100_000);
    let journal = Journal::open(&journal_dir).unwrap();
    let manifest = journal.scratch_manifest_path("key-elephant");
    {
        let volume = file_volume(&scratch_dir);
        let mut scratch = StripeScratch::new(volume, CHUNK).named("job77-run");
        scratch
            .attach_manifest(&manifest, e_spec.input_bytes, run_records)
            .unwrap();
        let run_bytes = (run_records as usize) * RECORD_LEN;
        let mut first = elephant[..run_bytes].to_vec();
        records_of_mut(&mut first).sort_by_key(|r| r.key);
        let mut w = scratch.create_run(run_bytes as u64).unwrap();
        w.push(&first).unwrap();
        scratch.seal_run(w).unwrap();
        // Dropped without dispose: the kill.
    }
    let mut rec = JournalRecord::accepted("key-elephant".into(), 77, e_spec.clone());
    rec.state = "running".into();
    rec.scratch_manifest = Some(manifest.clone());
    journal.record(&rec).unwrap();

    // ---- Life 2: same journal, same disk images.
    let daemon = start(&journal_dir, &scratch_dir, Duration::from_secs(60));
    assert_eq!(counter(&daemon, "jobs_recovered"), 1, "the elephant replays as interrupted");
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(60));

    // The settled key answers from the journal: no re-run, no payload.
    let dup = client
        .submit(&spec("little", "key-little", little.len() as u64, 4 << 20, 0), &little)
        .expect("duplicate answered");
    assert!(dup.duplicate, "settled key must dedupe across restart");
    assert_eq!(dup.plan, "cached");
    assert_eq!(dup.records, little_records);
    assert!(dup.output.is_empty());

    // The interrupted key re-runs with the sealed run reattached.
    let res = client.submit(&e_spec, &elephant).expect("resumed elephant completes");
    assert!(!res.duplicate);
    assert_eq!(res.output, oracle(elephant.clone()), "resumed output diverged");
    assert_eq!(counter(&daemon, "runs_recovered"), 1, "sealed run must be reused");
    assert!(counter(&daemon, "runs_reformed") >= 1, "lost ranges must re-form");
    assert!(!manifest.exists(), "manifest removed after completion");

    // Now settled: a third submit of the same key dedupes without running.
    let dup = client.submit(&e_spec, &elephant).expect("dedupe after resume");
    assert!(dup.duplicate);
    assert_eq!(counter(&daemon, "duplicates"), 2);

    daemon.drain();
    assert!(daemon.pool_idle(), "pool accounting did not return to zero");
}

#[test]
fn unclaimed_interrupted_scratch_is_swept_after_the_grace_period() {
    let journal_dir = tmp_dir("sweep-journal");
    let scratch_dir = tmp_dir("sweep-scratch");

    // Durable residue of a killed job whose client will never return: a
    // `running` record plus an (empty) scratch manifest.
    let orphan = spec("orphan", "key-orphan", 400 * RECORD_LEN as u64, 1 << 20, 400 * RECORD_LEN as u64);
    let journal = Journal::open(&journal_dir).unwrap();
    let manifest = journal.scratch_manifest_path("key-orphan");
    {
        let volume = file_volume(&scratch_dir);
        let mut scratch = StripeScratch::new(volume, CHUNK).named("job5-run");
        scratch.attach_manifest(&manifest, orphan.input_bytes, 256).unwrap();
        // Dropped without dispose.
    }
    let mut rec = JournalRecord::accepted("key-orphan".into(), 5, orphan.clone());
    rec.state = "running".into();
    rec.scratch_manifest = Some(manifest.clone());
    journal.record(&rec).unwrap();

    let daemon = start(&journal_dir, &scratch_dir, Duration::from_millis(1));
    wait_counter(&daemon, "scratch_disposed", 1);
    assert!(!manifest.exists(), "swept manifest must be deleted");
    assert!(!journal.record_path("key-orphan").exists(), "swept record must be deleted");

    // The key is free again: re-submitting it runs a brand-new job.
    let (data, _) = generate(GenConfig::datamation(400, 23));
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(60));
    let res = client.submit(&spec("orphan", "key-orphan", data.len() as u64, 1 << 20, data.len() as u64 + RECORD_LEN as u64), &data).expect("swept key is reusable");
    assert!(!res.duplicate, "a swept key must not dedupe");
    assert_eq!(res.output, oracle(data));

    daemon.drain();
    assert!(daemon.pool_idle());
}

#[test]
fn deadline_exceeded_is_typed_terminal_and_deduped() {
    let journal_dir = tmp_dir("deadline-journal");
    let scratch_dir = tmp_dir("deadline-scratch");
    let daemon = start(&journal_dir, &scratch_dir, Duration::from_secs(60));
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(60));

    // A sort big enough to outlive a 30 ms deadline by a wide margin.
    let (data, _) = generate(GenConfig::datamation(300_000, 24));
    let mut s = spec(
        "doomed",
        "key-doomed",
        data.len() as u64,
        2 << 20,
        data.len() as u64 + RECORD_LEN as u64,
    );
    s.deadline_ms = 30;
    match client.submit(&s, &data) {
        Err(ClientError::Remote { code, retryable, .. }) => {
            assert_eq!(code, "deadline_exceeded");
            assert!(!retryable, "a blown deadline must not invite a verbatim retry");
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    assert_eq!(counter(&daemon, "deadline_kills"), 1);

    // The failure is a settled outcome: the key dedupes to the same code.
    match client.submit(&s, &data) {
        Err(ClientError::Remote { code, retryable, .. }) => {
            assert_eq!(code, "deadline_exceeded");
            assert!(!retryable);
        }
        other => panic!("expected deduped deadline_exceeded, got {other:?}"),
    }
    assert_eq!(counter(&daemon, "duplicates"), 1);

    daemon.drain();
    assert!(daemon.pool_idle(), "deadline kill leaked pool budget");
}
