//! End-to-end integration: disk-to-disk sorts over striped simulated disks,
//! spanning dmgen + iosim + stripefs + alphasort-core.

use std::sync::Arc;

use alphasort_suite::dmgen::{validate_reader, GenConfig, Generator, KeyDistribution, RECORD_LEN};
use alphasort_suite::iosim::{catalog, BackendKind, DiskArray, DiskArrayBuilder, IoEngine, Pacing};
use alphasort_suite::sort::driver::{one_pass, two_pass, StripeScratch};
use alphasort_suite::sort::io::{StripeSink, StripeSource};
use alphasort_suite::sort::{Representation, SortConfig};
use alphasort_suite::stripefs::{StripedReader, StripedWriter, Volume};

/// Build an RZ26 array, load `records` of `dist` onto a striped input file,
/// and return everything a test needs.
fn setup(
    disks: usize,
    records: u64,
    dist: KeyDistribution,
) -> (
    DiskArray,
    Volume,
    Arc<alphasort_suite::stripefs::StripedFile>,
    alphasort_suite::dmgen::Checksum,
) {
    let mut builder = DiskArrayBuilder::new(Pacing::Modeled, BackendKind::Memory);
    let mut left = disks;
    while left > 0 {
        let n = left.min(4);
        builder = builder.controller(catalog::scsi_controller(), catalog::rz26(), n);
        left -= n;
    }
    let array = builder.build().unwrap();
    let engine = Arc::new(IoEngine::new(array.disks().to_vec()));
    let volume = Volume::new(engine);

    let bytes = records * RECORD_LEN as u64;
    let input = Arc::new(volume.create_across_all("input", 16 * 1024, bytes));
    let mut gen = Generator::new(GenConfig {
        records,
        seed: 0xD15C,
        dist,
    });
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 1_000 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).unwrap();
    }
    w.finish().unwrap();
    let cs = gen.checksum();
    array.reset_stats();
    (array, volume, input, cs)
}

fn sort_and_validate_one_pass(disks: usize, records: u64, dist: KeyDistribution, cfg: &SortConfig) {
    let (_array, volume, input, cs) = setup(disks, records, dist);
    let output = Arc::new(volume.create_across_all("output", 16 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = one_pass(&mut source, &mut sink, cfg).unwrap();
    assert_eq!(outcome.stats.records, records);
    assert_eq!(outcome.bytes, records * RECORD_LEN as u64);

    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, records);
}

#[test]
fn one_pass_disk_to_disk_random() {
    let cfg = SortConfig {
        run_records: 5_000,
        gather_batch: 1_000,
        workers: 2,
        ..Default::default()
    };
    sort_and_validate_one_pass(8, 30_000, KeyDistribution::Random, &cfg);
}

#[test]
fn one_pass_disk_to_disk_every_distribution() {
    let cfg = SortConfig {
        run_records: 2_000,
        gather_batch: 500,
        workers: 0,
        ..Default::default()
    };
    for dist in [
        KeyDistribution::Sorted,
        KeyDistribution::Reverse,
        KeyDistribution::NearlySorted { permille: 100 },
        KeyDistribution::DupHeavy { cardinality: 5 },
        KeyDistribution::CommonPrefix { shared: 8 },
    ] {
        sort_and_validate_one_pass(4, 8_000, dist, &cfg);
    }
}

#[test]
fn one_pass_every_representation_on_disks() {
    for rep in Representation::ALL {
        let cfg = SortConfig {
            run_records: 3_000,
            gather_batch: 700,
            representation: rep,
            workers: 1,
            ..Default::default()
        };
        sort_and_validate_one_pass(5, 10_000, KeyDistribution::Random, &cfg);
    }
}

#[test]
fn one_pass_single_disk_still_works() {
    let cfg = SortConfig {
        run_records: 1_000,
        gather_batch: 300,
        ..Default::default()
    };
    sort_and_validate_one_pass(1, 5_000, KeyDistribution::Random, &cfg);
}

#[test]
fn two_pass_disk_to_disk_with_striped_scratch() {
    let records = 30_000u64;
    let (_array, volume, input, cs) = setup(8, records, KeyDistribution::Random);
    let volume = Arc::new(volume);
    let output = Arc::new(volume.create_across_all("output", 16 * 1024, input.len()));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 100 * RECORD_LEN as u64);
    let cfg = SortConfig {
        run_records: 4_000, // 8 scratch runs
        gather_batch: 1_000,
        ..Default::default()
    };
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
    assert_eq!(outcome.stats.records, records);
    assert_eq!(outcome.stats.runs, 8);
    assert!(!outcome.stats.one_pass);

    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, records);
}

#[test]
fn cascade_merge_on_striped_scratch() {
    // 25 runs with fan-in 5: one intermediate level on the simulated disks.
    let records = 25_000u64;
    let (_array, volume, input, cs) = setup(6, records, KeyDistribution::Random);
    let volume = Arc::new(volume);
    let output = Arc::new(volume.create_across_all("output", 16 * 1024, input.len()));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 100 * RECORD_LEN as u64);
    let cfg = SortConfig {
        run_records: 1_000,
        gather_batch: 500,
        max_fanin: 5,
        workers: 2,
        ..Default::default()
    };
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
    assert_eq!(outcome.stats.runs, 25);
    assert_eq!(outcome.stats.merge_passes, 1);

    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, records);
}

#[test]
fn cascade_recycles_scratch_extents() {
    // Deep cascade (fan-in 2 over 16 runs = 3 intermediate levels): with
    // extent recycling, scratch high-water stays near 2× the data instead
    // of one copy per level.
    let records = 8_000u64;
    let bytes = records * RECORD_LEN as u64;
    let (_array, volume, input, cs) = setup(4, records, KeyDistribution::Random);
    let volume = Arc::new(volume);
    let output = Arc::new(volume.create_across_all("output", 16 * 1024, bytes));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 100 * RECORD_LEN as u64);
    let cfg = SortConfig {
        run_records: 500, // 16 runs
        gather_batch: 250,
        max_fanin: 2,
        ..Default::default()
    };
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
    assert_eq!(outcome.stats.merge_passes, 3); // 16 → 8 → 4 → 2
    let mut reader = StripedReader::new(output);
    validate_reader(&mut reader, cs).unwrap().unwrap();

    // Disk high-water: input + output + scratch levels. Without recycling,
    // scratch alone would be 4 × data (one copy per level incl. initial);
    // with recycling it stays ≤ ~2 × data (live level + level being built).
    let high_water: u64 = volume.engine().disks().iter().map(|d| d.len()).sum();
    assert!(
        high_water <= 5 * bytes,
        "scratch not recycled: high water {high_water} vs data {bytes}"
    );
}

#[test]
fn two_pass_moves_twice_the_disk_bytes() {
    // §6's core claim, measured on the simulated disks themselves.
    let records = 20_000u64;
    let bytes = records * RECORD_LEN as u64;

    let (array, volume, input, _) = setup(4, records, KeyDistribution::Random);
    let volume = Arc::new(volume);
    let output = Arc::new(volume.create_across_all("output", 16 * 1024, bytes));
    let cfg = SortConfig {
        run_records: 2_500,
        gather_batch: 500,
        ..Default::default()
    };

    // One-pass traffic.
    array.reset_stats();
    let mut source = StripeSource::new(Arc::clone(&input));
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    let one = array.stats();
    assert_eq!(one.bytes_read, bytes);
    assert_eq!(one.bytes_written, bytes);

    // Two-pass traffic: input + runs out + runs back + output = 4×.
    array.reset_stats();
    let output2 = Arc::new(volume.create_across_all("output2", 16 * 1024, bytes));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 100 * RECORD_LEN as u64);
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(output2);
    two_pass(&mut source, &mut sink, &mut scratch, &cfg).unwrap();
    let two = array.stats();
    assert_eq!(two.bytes_read, 2 * bytes);
    assert_eq!(two.bytes_written, 2 * bytes);
}

#[test]
fn modeled_elapsed_matches_paper_scale() {
    // A 10 MB sort on 16 RZ26 (≈28 MB/s stripe): modeled IO elapsed must be
    // in the high-hundreds of milliseconds — one tenth of the paper's
    // 100 MB ≈ 9 s.
    let records = 100_000u64;
    let (array, volume, input, _) = setup(16, records, KeyDistribution::Random);
    let output = Arc::new(volume.create_across_all("output", 64 * 1024, input.len()));
    let cfg = SortConfig {
        run_records: 10_000,
        gather_batch: 2_000,
        ..Default::default()
    };
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg).unwrap();
    let modeled = array.stats().modeled_elapsed().as_secs_f64();
    assert!(
        (0.5..1.6).contains(&modeled),
        "modeled elapsed {modeled} s for a 10 MB sort on 16 RZ26"
    );
}
