//! The `ExternalSorter` facade: planning + execution in one call.

use alphasort_suite::dmgen::{generate, validate_records, GenConfig, RECORD_LEN};
use alphasort_suite::sort::driver::MemScratch;
use alphasort_suite::sort::io::{MemSink, MemSource};
use alphasort_suite::sort::planner::PassPlan;
use alphasort_suite::sort::{ExternalSorter, SortConfig};

fn sorter(memory_budget: u64) -> ExternalSorter {
    ExternalSorter::new(SortConfig {
        run_records: 500,
        gather_batch: 200,
        memory_budget,
        ..Default::default()
    })
}

#[test]
fn small_input_runs_one_pass() {
    let records = 2_000u64;
    let (data, cs) = generate(GenConfig::datamation(records, 1));
    let mut source = MemSource::new(data, 10_000);
    let mut sink = MemSink::new();
    let mut scratch = MemScratch::new(100 * RECORD_LEN);
    // Budget comfortably above the 200 KB input.
    let outcome = sorter(1 << 20)
        .sort(&mut source, &mut sink, &mut scratch)
        .unwrap();
    assert_eq!(outcome.plan, PassPlan::OnePass);
    assert!(outcome.stats.one_pass);
    validate_records(sink.data(), cs).unwrap();
}

#[test]
fn oversized_input_runs_two_passes() {
    let records = 3_000u64; // 300 KB
    let (data, cs) = generate(GenConfig::datamation(records, 2));
    let mut source = MemSource::new(data, 10_000);
    let mut sink = MemSink::new();
    let mut scratch = MemScratch::new(100 * RECORD_LEN);
    // Budget below the input: must spill.
    let outcome = sorter(100 << 10)
        .sort(&mut source, &mut sink, &mut scratch)
        .unwrap();
    assert_eq!(outcome.plan, PassPlan::TwoPass);
    assert!(!outcome.stats.one_pass);
    assert!(outcome.stats.runs > 1);
    validate_records(sink.data(), cs).unwrap();
}

#[test]
fn boundary_just_under_budget_is_one_pass() {
    // one_pass_capacity = budget / 1.10; put the input right below it.
    let budget = 1u64 << 20;
    let cap = (budget as f64 / 1.10) as u64;
    let records = cap / RECORD_LEN as u64 - 1;
    let (data, cs) = generate(GenConfig::datamation(records, 3));
    let mut source = MemSource::new(data, 64 * 1024);
    let mut sink = MemSink::new();
    let mut scratch = MemScratch::new(100 * RECORD_LEN);
    let outcome = sorter(budget)
        .sort(&mut source, &mut sink, &mut scratch)
        .unwrap();
    assert_eq!(outcome.plan, PassPlan::OnePass);
    validate_records(sink.data(), cs).unwrap();
}

/// A source that hides its size (a pipe): the facade must go conservative.
struct OpaqueSource(MemSource);

impl alphasort_suite::sort::io::RecordSource for OpaqueSource {
    fn next_chunk(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        self.0.next_chunk()
    }
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

#[test]
fn unknown_size_defaults_to_two_pass() {
    let (data, cs) = generate(GenConfig::datamation(1_000, 4));
    let mut source = OpaqueSource(MemSource::new(data, 10_000));
    let mut sink = MemSink::new();
    let mut scratch = MemScratch::new(100 * RECORD_LEN);
    let outcome = sorter(1 << 30)
        .sort(&mut source, &mut sink, &mut scratch)
        .unwrap();
    assert_eq!(outcome.plan, PassPlan::TwoPass);
    validate_records(sink.data(), cs).unwrap();
}
