//! Failure injection across the stack — the storage chaos matrix.
//!
//! Transient disk faults must be retried to success (and show up in the
//! `io.retry` counter, not in the output); recurring faults must exhaust the
//! retry budget promptly and surface an error naming the disk; corrupt
//! scratch strides must be caught by checksums naming disk, run and offset;
//! and a crash partway through a two-pass sort must be recoverable with
//! `StripeScratch::resume`, re-forming only the runs that were lost.
//!
//! Tests that assert on observability counters serialize on a process-wide
//! lock (the metrics store is global) and only make monotone `>= n` claims,
//! so unrelated tests bumping the same counters cannot break them.

use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use alphasort_suite::dmgen::{generate, validate_reader, GenConfig, Generator, RECORD_LEN};
use alphasort_suite::iosim::{
    catalog, FaultPlan, FaultyStorage, IoEngine, MemStorage, Pacing, SimDisk, Storage,
};
use alphasort_suite::obs;
use alphasort_suite::sort::driver::{one_pass, two_pass, StripeScratch};
use alphasort_suite::sort::io::{MemSink, MemSource, StripeSink, StripeSource};
use alphasort_suite::sort::SortConfig;
use alphasort_suite::stripefs::{RetryPolicy, StripedReader, StripedWriter, Volume};

/// Serializes tests that enable observability and read global counters.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn counter(snap: &obs::MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Build a 4-disk volume where disk 0's storage carries `plan`.
fn faulty_volume(plan: FaultPlan) -> Volume {
    let disks = (0..4)
        .map(|i| {
            let base: Arc<dyn Storage> = Arc::new(MemStorage::new());
            let storage: Arc<dyn Storage> = if i == 0 {
                Arc::new(FaultyStorage::new(base, plan.clone()))
            } else {
                base
            };
            SimDisk::new(
                format!("d{i}"),
                catalog::uncapped(),
                storage,
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    Volume::new(Arc::new(IoEngine::new(disks)))
}

/// A 2-disk scratch volume whose disk 0 carries `plan`, plus the underlying
/// storages so a test can simulate a restart: rebuild a clean volume over
/// the same bytes with [`clean_scratch_volume`].
fn faulty_scratch_volume(plan: FaultPlan) -> (Vec<Arc<MemStorage>>, Arc<Volume>) {
    let storages: Vec<Arc<MemStorage>> = (0..2).map(|_| Arc::new(MemStorage::new())).collect();
    let disks = storages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let base: Arc<dyn Storage> = s.clone();
            let storage: Arc<dyn Storage> = if i == 0 {
                Arc::new(FaultyStorage::new(base, plan.clone()))
            } else {
                base
            };
            SimDisk::new(
                format!("s{i}"),
                catalog::uncapped(),
                storage,
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))));
    (storages, volume)
}

/// Rebuild a fault-free volume over storages that survived a "crash".
fn clean_scratch_volume(storages: &[Arc<MemStorage>]) -> Arc<Volume> {
    let disks = storages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            SimDisk::new(
                format!("s{i}"),
                catalog::uncapped(),
                s.clone(),
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    Arc::new(Volume::new(Arc::new(IoEngine::new(disks))))
}

fn manifest_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "alphasort-chaos-{tag}-{}.manifest",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn load_input(
    volume: &Volume,
    records: u64,
) -> (
    Arc<alphasort_suite::stripefs::StripedFile>,
    alphasort_suite::dmgen::Checksum,
) {
    let bytes = records * RECORD_LEN as u64;
    let input = Arc::new(volume.create_across_all("input", 4 * 1024, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 3));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 500 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).unwrap();
    }
    w.finish().unwrap();
    (input, gen.checksum())
}

fn cfg() -> SortConfig {
    SortConfig {
        run_records: 1_000,
        gather_batch: 250,
        ..Default::default()
    }
}

fn validate_mem(output: Vec<u8>, cs: alphasort_suite::dmgen::Checksum) {
    let mut cursor = std::io::Cursor::new(output);
    let report = validate_reader(&mut cursor, cs).unwrap();
    report.expect("output failed validation");
}

#[test]
fn transient_read_fault_is_retried_to_success() {
    let _g = obs_lock();
    obs::enable(obs::DEFAULT_CAPACITY);
    let before = obs::metrics_snapshot();
    // Input loading does some writes; the fault is a *read* midway through
    // the sort's input scan. TimedOut is transient: the volume's default
    // retry policy must absorb it and produce a fully valid output.
    let volume = faulty_volume(FaultPlan::new().fail_read(5, ErrorKind::TimedOut));
    let (input, cs) = load_input(&volume, 10_000);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).expect("transient read fault was not retried");
    let delta = obs::metrics_snapshot().diff(&before);
    obs::disable();
    assert!(counter(&delta, "io.retry") >= 1, "no retry recorded");
    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, 10_000);
}

#[test]
fn transient_write_fault_is_retried_to_success() {
    let _g = obs_lock();
    obs::enable(obs::DEFAULT_CAPACITY);
    let before = obs::metrics_snapshot();
    let records = 10_000u64;
    // Let the input-load writes to disk 0 succeed; fail one later, during
    // the sort's output phase. WriteZero (a short write) is transient.
    let load_writes_to_disk0 = (records as usize * RECORD_LEN).div_ceil(4 * 4096);
    let volume = faulty_volume(
        FaultPlan::new().fail_write(load_writes_to_disk0 as u64 + 10, ErrorKind::WriteZero),
    );
    let (input, cs) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).expect("transient write fault was not retried");
    let delta = obs::metrics_snapshot().diff(&before);
    obs::disable();
    assert!(counter(&delta, "io.retry") >= 1, "no retry recorded");
    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, records);
}

#[test]
fn recurring_fault_exhausts_retry_budget_with_attributed_error() {
    let _g = obs_lock();
    obs::enable(obs::DEFAULT_CAPACITY);
    let before = obs::metrics_snapshot();
    // Every read from disk 0 fails: the retry budget must be spent promptly
    // and the surfaced error must say which disk and where.
    let volume = faulty_volume(FaultPlan::new().fail_read_every(1, ErrorKind::TimedOut));
    let (input, _) = load_input(&volume, 5_000);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(output);
    let err = match one_pass(&mut source, &mut sink, &cfg()) {
        Ok(_) => panic!("sort succeeded with a permanently failing disk"),
        Err(e) => e,
    };
    let delta = obs::metrics_snapshot().diff(&before);
    obs::disable();
    assert_eq!(err.kind(), ErrorKind::TimedOut);
    let msg = err.to_string();
    assert!(msg.contains("read on disk 0 (d0) failed"), "{msg}");
    assert!(msg.contains("attempt(s)"), "{msg}");
    assert!(counter(&delta, "io.giveup") >= 1, "no giveup recorded");
}

#[test]
fn recurring_fault_trips_the_disk_failed_latch() {
    let _g = obs_lock();
    obs::enable(obs::DEFAULT_CAPACITY);
    let before = obs::metrics_snapshot();
    let mut volume = faulty_volume(FaultPlan::new().fail_write_every(1, ErrorKind::TimedOut));
    // Tight budget so one striped operation's worth of strikes trips it.
    volume.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        backoff: std::time::Duration::ZERO,
        disk_fail_threshold: 2,
    });
    let file = Arc::new(volume.create_across_all("w", 4 * 1024, 1 << 20));
    let mut w = StripedWriter::new(file);
    let data = vec![7u8; 64 * 1024];
    let res = w.push(&data).and_then(|()| w.finish().map(|_| ()));
    let delta = obs::metrics_snapshot().diff(&before);
    obs::disable();
    assert!(res.is_err(), "writes to a dead disk succeeded");
    assert!(
        counter(&delta, "stripe.disk_failed") >= 1,
        "disk never latched failed"
    );
}

#[test]
fn corrupt_scratch_stride_fails_merge_naming_disk_run_offset() {
    // Pass 1 writes checksummed runs; a silently corrupted stride on the
    // scratch volume must be caught when the merge reads it back, and the
    // error must say which disk, which run, and where.
    let (_storages, volume) = faulty_scratch_volume(FaultPlan::new().corrupt_write(5, 100));
    let path = manifest_path("corrupt");
    let (input, _cs) = generate(GenConfig::datamation(6_000, 11));
    let mut scratch = StripeScratch::with_manifest(
        Arc::clone(&volume),
        4 * 1024,
        &path,
        input.len() as u64,
        1_000,
    )
    .unwrap();
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let err = match two_pass(&mut source, &mut sink, &mut scratch, &cfg()) {
        Ok(_) => panic!("corrupt scratch stride went unnoticed"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("checksum mismatch on disk 0 (s0)"), "{msg}");
    assert!(msg.contains("scratch-run-"), "{msg}");
    assert!(msg.contains("phys offset"), "{msg}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_during_run_formation_resumes_reforming_only_missing_runs() {
    let path = manifest_path("crash-pass1");
    let (input, cs) = generate(GenConfig::datamation(6_000, 23));

    // Phase A: scratch disk 0 dies (non-transient) after 20 writes — a few
    // runs seal, then the sort crashes mid-pass-1.
    let (storages, volume) =
        faulty_scratch_volume(FaultPlan::new().fail_write_after(20, ErrorKind::Other));
    let mut scratch = StripeScratch::with_manifest(
        Arc::clone(&volume),
        4 * 1024,
        &path,
        input.len() as u64,
        1_000,
    )
    .unwrap();
    let mut source = MemSource::new(input.clone(), 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    two_pass(&mut source, &mut sink, &mut scratch, &cfg())
        .expect_err("sort survived a dead scratch disk");
    drop(scratch);

    // Phase B: "restart" — same media, clean disks, resume from the
    // manifest. Only the lost runs may be re-formed.
    let volume = clean_scratch_volume(&storages);
    let (mut scratch, report) = StripeScratch::resume(volume, &path).unwrap();
    assert!(
        !report.recovered.is_empty(),
        "no runs survived the crash (fault fired too early for this test)"
    );
    assert!(
        report.recovered.len() < 6,
        "all runs survived the crash (fault never fired)"
    );
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg()).unwrap();
    assert_eq!(outcome.stats.runs, 6);
    assert!(outcome.stats.runs_recovered >= 1, "nothing recovered");
    assert!(outcome.stats.runs_reformed >= 1, "nothing re-formed");
    assert_eq!(
        outcome.stats.runs_recovered + outcome.stats.runs_reformed,
        outcome.stats.runs as u64
    );
    validate_mem(sink.into_inner(), cs);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_during_merge_resumes_recovering_every_run() {
    let path = manifest_path("crash-merge");
    let (input, cs) = generate(GenConfig::datamation(6_000, 31));

    // Phase A: every scratch *read* fails — pass 1 completes and seals all
    // runs, then the merge crashes on its first read-back.
    let (storages, volume) =
        faulty_scratch_volume(FaultPlan::new().fail_read_after(0, ErrorKind::Other));
    let mut scratch = StripeScratch::with_manifest(
        Arc::clone(&volume),
        4 * 1024,
        &path,
        input.len() as u64,
        1_000,
    )
    .unwrap();
    let mut source = MemSource::new(input.clone(), 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    two_pass(&mut source, &mut sink, &mut scratch, &cfg())
        .expect_err("merge read a dead scratch disk");
    drop(scratch);

    // Phase B: all pass-1 work survives; resume re-forms nothing and only
    // redoes the merge.
    let volume = clean_scratch_volume(&storages);
    let (mut scratch, report) = StripeScratch::resume(volume, &path).unwrap();
    assert_eq!(report.recovered.len(), 6);
    assert!(report.corrupt.is_empty(), "{:?}", report.corrupt);
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg()).unwrap();
    assert_eq!(outcome.stats.runs_recovered, 6);
    assert_eq!(outcome.stats.runs_reformed, 0);
    validate_mem(sink.into_inner(), cs);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn scratch_volume_full_is_an_error_not_a_panic() {
    // A scratch volume too small for even one run: the two-pass sort must
    // fail with an attributed "scratch volume full" error, not panic.
    let disks = (0..2)
        .map(|i| {
            let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
            SimDisk::new(
                format!("s{i}"),
                catalog::uncapped(),
                storage,
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    let volume = Arc::new(Volume::new(Arc::new(IoEngine::new(disks))).with_disk_limit(16 * 1024));
    let (input, _cs) = generate(GenConfig::datamation(6_000, 41));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 4 * 1024);
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let err = match two_pass(&mut source, &mut sink, &mut scratch, &cfg()) {
        Ok(_) => panic!("sort fit in a 32 KB scratch volume"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::StorageFull);
    let msg = err.to_string();
    assert!(msg.contains("scratch volume full (needed"), "{msg}");
    assert!(msg.contains("had"), "{msg}");
}

#[test]
fn silent_output_corruption_is_caught_by_validator() {
    let records = 10_000u64;
    let load_writes_to_disk0 = (records as usize * RECORD_LEN).div_ceil(4 * 4096) as u64;
    // Corrupt a byte of some output-phase write on disk 0.
    let volume = faulty_volume(FaultPlan::new().corrupt_write(load_writes_to_disk0 + 7, 123));
    let (input, cs) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    // The sort itself cannot see the corruption: it must succeed…
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    // …and the validator must reject the output.
    let mut reader = StripedReader::new(output);
    let verdict = validate_reader(&mut reader, cs).unwrap();
    assert!(verdict.is_err(), "corrupted output passed validation");
}

#[test]
fn corrupt_read_of_input_produces_invalid_output() {
    let records = 5_000u64;
    let volume = faulty_volume(FaultPlan::new().corrupt_read(3, 50));
    let (input, cs) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    let mut reader = StripedReader::new(output);
    let verdict = validate_reader(&mut reader, cs).unwrap();
    assert!(verdict.is_err(), "input corruption went unnoticed");
}

#[test]
fn fault_free_control_case_passes() {
    // Sanity for the fault tests above: same setup, no faults, must pass.
    let volume = faulty_volume(FaultPlan::new());
    let (input, cs) = load_input(&volume, 10_000);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, 10_000);
}

#[test]
fn striped_writer_propagates_member_write_faults() {
    // A non-transient fault on a member disk must surface through the
    // buffered writer's pipeline (at push-backpressure or finish) without
    // being retried away or vanishing.
    let volume = faulty_volume(FaultPlan::new().fail_write(2, ErrorKind::Other));
    let file = Arc::new(volume.create_across_all("w", 4 * 1024, 1 << 20));
    let mut w = StripedWriter::new(file);
    let data = vec![1u8; 256 * 1024];
    let res = w.push(&data).and_then(|()| w.finish().map(|_| ()));
    assert!(res.is_err(), "injected write fault was swallowed");
}

#[test]
fn validator_rejects_truncated_stream() {
    let (input, cs) = generate(GenConfig::datamation(100, 1));
    let mut sorted = input.clone();
    alphasort_suite::dmgen::records_of_mut(&mut sorted).sort_by_key(|a| a.key);
    sorted.truncate(50 * RECORD_LEN);
    let mut cursor = std::io::Cursor::new(&sorted);
    assert!(validate_reader(&mut cursor, cs).unwrap().is_err());
}

#[test]
fn transient_fault_during_partitioned_merge_is_retried_to_success() {
    let _g = obs_lock();
    obs::enable(obs::DEFAULT_CAPACITY);
    let before = obs::metrics_snapshot();
    // The input is in memory and pass 1 only writes, so every scratch
    // *read* belongs to the partitioned merge: splitter probes and the
    // range workers' window reads. A transient fault on the 50th read
    // lands inside that phase and must be absorbed by the retry policy.
    let (_storages, volume) =
        faulty_scratch_volume(FaultPlan::new().fail_read(50, ErrorKind::TimedOut));
    let (input, cs) = generate(GenConfig::datamation(6_000, 51));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 4 * 1024);
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        merge_workers: 4,
        ..cfg()
    };
    let outcome = two_pass(&mut source, &mut sink, &mut scratch, &cfg)
        .expect("transient fault during the partitioned merge was not retried");
    let delta = obs::metrics_snapshot().diff(&before);
    obs::disable();
    assert!(counter(&delta, "io.retry") >= 1, "no retry recorded");
    assert_eq!(outcome.stats.merge_range_records.len(), 4);
    assert_eq!(outcome.stats.merge_range_records.iter().sum::<u64>(), 6_000);
    validate_mem(sink.into_inner(), cs);
}

#[test]
fn corrupt_stride_fails_partitioned_merge_with_attributed_error() {
    // A stride silently corrupted during pass 1 sits in some range
    // worker's read window. The checksummed window read must catch it,
    // the error must propagate out of the worker through the scoped-thread
    // join (no hang: the root stops draining, sibling workers unblock),
    // and the message must still name disk and run.
    let (_storages, volume) =
        faulty_scratch_volume(FaultPlan::new().corrupt_write(70, 100));
    let (input, _cs) = generate(GenConfig::datamation(6_000, 52));
    let mut scratch = StripeScratch::new(Arc::clone(&volume), 4 * 1024);
    let mut source = MemSource::new(input, 250 * RECORD_LEN);
    let mut sink = MemSink::new();
    let cfg = SortConfig {
        merge_workers: 4,
        ..cfg()
    };
    let err = match two_pass(&mut source, &mut sink, &mut scratch, &cfg) {
        Ok(_) => panic!("corrupt scratch stride went unnoticed by the partitioned merge"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(msg.contains("checksum mismatch on disk 0 (s0)"), "{msg}");
    assert!(msg.contains("scratch-run-"), "{msg}");
}
