//! Failure injection across the stack: injected disk faults must surface as
//! errors from the sort (never as silently wrong output), and silent media
//! corruption must be caught by the validator.

use std::io::ErrorKind;
use std::sync::Arc;

use alphasort_suite::dmgen::{generate, validate_reader, GenConfig, Generator, RECORD_LEN};
use alphasort_suite::iosim::{
    catalog, FaultPlan, FaultyStorage, IoEngine, MemStorage, Pacing, SimDisk, Storage,
};
use alphasort_suite::sort::driver::one_pass;
use alphasort_suite::sort::io::{StripeSink, StripeSource};
use alphasort_suite::sort::SortConfig;
use alphasort_suite::stripefs::{StripedReader, StripedWriter, Volume};

/// Build a 4-disk volume where disk 0's storage carries `plan`.
fn faulty_volume(plan: FaultPlan) -> Volume {
    let disks = (0..4)
        .map(|i| {
            let base: Arc<dyn Storage> = Arc::new(MemStorage::new());
            let storage: Arc<dyn Storage> = if i == 0 {
                Arc::new(FaultyStorage::new(base, plan.clone()))
            } else {
                base
            };
            SimDisk::new(
                format!("d{i}"),
                catalog::uncapped(),
                storage,
                Pacing::Modeled,
                None,
            )
        })
        .collect();
    Volume::new(Arc::new(IoEngine::new(disks)))
}

fn load_input(
    volume: &Volume,
    records: u64,
) -> (
    Arc<alphasort_suite::stripefs::StripedFile>,
    alphasort_suite::dmgen::Checksum,
) {
    let bytes = records * RECORD_LEN as u64;
    let input = Arc::new(volume.create_across_all("input", 4 * 1024, bytes));
    let mut gen = Generator::new(GenConfig::datamation(records, 3));
    let mut w = StripedWriter::new(Arc::clone(&input));
    let mut buf = vec![0u8; 500 * RECORD_LEN];
    loop {
        let n = gen.fill(&mut buf);
        if n == 0 {
            break;
        }
        w.push(&buf[..n]).unwrap();
    }
    w.finish().unwrap();
    (input, gen.checksum())
}

fn cfg() -> SortConfig {
    SortConfig {
        run_records: 1_000,
        gather_batch: 250,
        ..Default::default()
    }
}

#[test]
fn read_error_during_sort_surfaces_as_err() {
    // Input loading does some writes; the failing op is a *read* midway
    // through the sort's input scan.
    let volume = faulty_volume(FaultPlan::new().fail_read(5, ErrorKind::TimedOut));
    let (input, _) = load_input(&volume, 10_000);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(output);
    let err = one_pass(&mut source, &mut sink, &cfg()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::TimedOut);
}

#[test]
fn write_error_during_output_surfaces_as_err() {
    let records = 10_000u64;
    // Let the ~50 input-load writes to disk 0 succeed; fail one later,
    // during the sort's output phase.
    let load_writes_to_disk0 = (records as usize * RECORD_LEN).div_ceil(4 * 4096);
    let volume = faulty_volume(
        FaultPlan::new().fail_write(load_writes_to_disk0 as u64 + 10, ErrorKind::WriteZero),
    );
    let (input, _) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(output);
    let err = one_pass(&mut source, &mut sink, &cfg()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::WriteZero);
}

#[test]
fn silent_output_corruption_is_caught_by_validator() {
    let records = 10_000u64;
    let load_writes_to_disk0 = (records as usize * RECORD_LEN).div_ceil(4 * 4096) as u64;
    // Corrupt a byte of some output-phase write on disk 0.
    let volume = faulty_volume(FaultPlan::new().corrupt_write(load_writes_to_disk0 + 7, 123));
    let (input, cs) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    // The sort itself cannot see the corruption: it must succeed…
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    // …and the validator must reject the output.
    let mut reader = StripedReader::new(output);
    let verdict = validate_reader(&mut reader, cs).unwrap();
    assert!(verdict.is_err(), "corrupted output passed validation");
}

#[test]
fn corrupt_read_of_input_produces_invalid_output() {
    let records = 5_000u64;
    let volume = faulty_volume(FaultPlan::new().corrupt_read(3, 50));
    let (input, cs) = load_input(&volume, records);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    let mut reader = StripedReader::new(output);
    let verdict = validate_reader(&mut reader, cs).unwrap();
    assert!(verdict.is_err(), "input corruption went unnoticed");
}

#[test]
fn fault_free_control_case_passes() {
    // Sanity for the three tests above: same setup, no faults, must pass.
    let volume = faulty_volume(FaultPlan::new());
    let (input, cs) = load_input(&volume, 10_000);
    let output = Arc::new(volume.create_across_all("output", 4 * 1024, input.len()));
    let mut source = StripeSource::new(input);
    let mut sink = StripeSink::new(Arc::clone(&output));
    one_pass(&mut source, &mut sink, &cfg()).unwrap();
    let mut reader = StripedReader::new(output);
    let report = validate_reader(&mut reader, cs).unwrap().unwrap();
    assert_eq!(report.records, 10_000);
}

#[test]
fn striped_writer_propagates_member_write_faults() {
    // A fault on a member disk must surface through the buffered writer's
    // pipeline (at push-backpressure or finish), not vanish.
    let volume = faulty_volume(FaultPlan::new().fail_write(2, ErrorKind::Other));
    let file = std::sync::Arc::new(volume.create_across_all("w", 4 * 1024, 1 << 20));
    let mut w = alphasort_suite::stripefs::StripedWriter::new(file);
    let data = vec![1u8; 256 * 1024];
    let res = w.push(&data).and_then(|()| w.finish().map(|_| ()));
    assert!(res.is_err(), "injected write fault was swallowed");
}

#[test]
fn validator_rejects_truncated_stream() {
    let (input, cs) = generate(GenConfig::datamation(100, 1));
    let mut sorted = input.clone();
    alphasort_suite::dmgen::records_of_mut(&mut sorted).sort_by_key(|a| a.key);
    sorted.truncate(50 * RECORD_LEN);
    let mut cursor = std::io::Cursor::new(&sorted);
    assert!(validate_reader(&mut cursor, cs).unwrap().is_err());
}
