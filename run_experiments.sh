#!/bin/sh
# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
set -e
cargo build --release -p alphasort-bench
for b in table1 fig3 fig4 variants striping table6 onepass fig7 table8 \
         walkthrough minutesort dollarsort speedup baseline terabyte ablation; do
  echo
  echo "################################ exp_$b"
  ./target/release/exp_$b
done
